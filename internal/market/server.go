package market

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// maxRequestEvents bounds one POST /v1/reports body. Clients batching
// harder than this get a 413 and should split; it keeps a single
// request from monopolizing every shard queue. The effective per-
// request bound is the smaller of this and the store's total queue
// capacity (QueueCap × Shards) — a batch past the latter cannot fit
// even into idle queues, so a 429 there would never clear.
const maxRequestEvents = 65536

// maxRequestBytes caps a request body (pre-decompression) so a
// runaway stream cannot balloon the JSON decoder; at typical event
// sizes it is far above what maxRequestEvents events occupy.
const maxRequestBytes = 64 << 20

// NewHandler wires a Store into marketd's HTTP surface:
//
//	POST /v1/reports             — newline-delimited JSON Events
//	                               (Content-Encoding: gzip honored);
//	                               200 {"accepted":n,"duplicates":d},
//	                               429 + Retry-After on backpressure
//	                               (transient — retry), 503 +
//	                               Retry-After when a target shard is
//	                               degraded (disk trouble — retry,
//	                               alert), 413 on a batch or event that
//	                               could never be admitted (permanent —
//	                               split it), 421 on a batch whose keys
//	                               this node does not own (permanent —
//	                               re-route to the owning node)
//	GET  /v1/apps/{app}/verdict  — the app's fused multi-channel
//	                               Verdict as JSON; ?channel=reports
//	                               serves just the ReportsChannel (the
//	                               federation building block)
//	GET  /v1/apps/{app}/timeline — the app's verdict Timeline as JSON
//	                               (first report → tally climbs →
//	                               threshold crossing, in event time);
//	                               ?raw=1 serves the mergeable per-shard
//	                               TimelineParts federation consumes
//	POST /v1/apps/{app}/fingerprint — the app's resource fingerprint
//	                               (JSON {"digests":[...]}); 200 with a
//	                               FingerprintAck after the WAL flush,
//	                               413 past MaxFingerprintEntries, plus
//	                               the ingest error contract (429/503/
//	                               421)
//	GET  /v1/apps/{app}/fingerprint — the stored Fingerprint; 404 when
//	                               the app never uploaded one
//	GET  /v1/apps/{app}/similar  — the app's Similar top-K neighbors;
//	                               404 without a fingerprint
//	POST /v1/similarity/probe    — federation: local candidates for a
//	                               digest set (ProbeRequest/Response)
//	POST /v1/similarity/df       — federation: local document
//	                               frequencies (DFRequest/Response)
//	GET  /v1/node                — the node's cluster NodeDesc (id,
//	                               slots, owned shard range, merge knobs)
//	GET  /healthz                — per-shard health as JSON; 503 once
//	                               any shard is degraded
//	GET  /metrics, /metrics.json — the store's registry
//
// The ingestion wire format is the same Event JSON the device-side
// report.HTTPSink emits, so a pipeline pointed at marketd needs no
// adapter. A POST carrying obs.TraceHeader is the server end of a
// report trace: the daemon answers with obs.ServerTimingHeader — its
// receive→post-WAL-flush-ack wall time in microseconds — closing the
// market leg of the per-report latency breakdown, and records the
// same quantity into the (volatile) market_server_ack_us histogram.
func NewHandler(st *Store) http.Handler {
	mux := http.NewServeMux()
	reqs := st.Obs().Counter("market_http_requests_total")
	traced := st.Obs().Counter("market_traced_requests_total")
	hAckUs := st.Obs().Histogram("market_server_ack_us", obs.ExpBuckets(50, 4, 12), obs.Volatile())
	maxEvents := maxRequestEvents
	if c := st.cfg.QueueCap * st.cfg.Shards; c < maxEvents {
		maxEvents = c
	}

	mux.HandleFunc("POST /v1/reports", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		recv := time.Now()
		isTraced := false
		if h := r.Header.Get(obs.TraceHeader); h != "" {
			if _, err := obs.ParseTraceID(h); err == nil {
				isTraced = true
				traced.Inc()
			}
		}
		evs, ok := ReadReports(w, r, maxEvents)
		if !ok {
			return
		}
		accepted, dups, err := st.Ingest(evs)
		if !WriteIngestError(w, err) {
			return
		}
		// The ack is post-WAL-flush (Ingest returned), so this duration
		// covers shard queueing plus the group-commit flush — the
		// market-side leg of the report's latency breakdown.
		ackUs := time.Since(recv).Microseconds()
		hAckUs.Observe(ackUs)
		if isTraced {
			w.Header().Set(obs.ServerTimingHeader, strconv.FormatInt(ackUs, 10))
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"accepted\":%d,\"duplicates\":%d}\n", accepted, dups)
	})

	mux.HandleFunc("GET /v1/apps/{app}/verdict", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		w.Header().Set("Content-Type", "application/json")
		// ?channel=reports serves the reports channel alone — the
		// summable per-node piece the cluster router federates (the
		// fused verdict is computed once, at the merge point).
		if r.URL.Query().Get("channel") == "reports" {
			b, _ := json.Marshal(st.reportsChannel(r.PathValue("app")))
			w.Write(append(b, '\n'))
			return
		}
		b, _ := json.Marshal(st.Verdict(r.PathValue("app")))
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("POST /v1/apps/{app}/fingerprint", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		var fp Fingerprint
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&fp); err != nil {
			http.Error(w, fmt.Sprintf("bad fingerprint body: %v", err), http.StatusBadRequest)
			return
		}
		fp.App = r.PathValue("app")
		ack, err := st.PutFingerprint(fp)
		if !WriteIngestError(w, err) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(ack)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/apps/{app}/fingerprint", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		fp, err := st.Fingerprint(r.PathValue("app"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(fp)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/apps/{app}/similar", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sim, err := st.Similar(r.PathValue("app"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(sim)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("POST /v1/similarity/probe", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		var req ProbeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad probe body: %v", err), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(st.Probe(req))
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("POST /v1/similarity/df", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		var req DFRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad df body: %v", err), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(st.DFQuery(req))
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/apps/{app}/timeline", func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		w.Header().Set("Content-Type", "application/json")
		// ?raw=1 serves the mergeable per-shard parts (entries with tie
		// hashes + evicted counts) instead of the rendered timeline —
		// the form the cluster router federates across nodes.
		if r.URL.Query().Get("raw") == "1" {
			b, _ := json.Marshal(st.TimelineParts(r.PathValue("app")))
			w.Write(append(b, '\n'))
			return
		}
		b, _ := json.Marshal(st.Timeline(r.PathValue("app")))
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/node", func(w http.ResponseWriter, _ *http.Request) {
		reqs.Inc()
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(st.NodeDesc())
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Per-shard state, not a blanket 200: an orchestrator must see
		// partial failure (some shards degraded → 503 + the counts)
		// while the daemon keeps serving the healthy shards.
		ok, degraded := st.Health()
		status := "ok"
		code := http.StatusOK
		if degraded > 0 {
			status = "degraded"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, "{\"status\":%q,\"shards_ok\":%d,\"shards_degraded\":%d}\n", status, ok, degraded)
	})

	obs.RegisterMetricsHandlers(mux, st.Obs())
	return mux
}

// ReadReports decodes a POST /v1/reports body — newline-delimited
// Event JSON, Content-Encoding: gzip honored — enforcing the wire
// bounds (maxRequestBytes total, MaxEventBytes per event, maxEvents
// per batch, app/bomb/user present). On any violation it writes the
// error response itself and reports ok=false. Shared by the node
// handler above and the cluster router's HTTP front, so both speak
// byte-identical request contracts.
func ReadReports(w http.ResponseWriter, r *http.Request, maxEvents int) ([]report.Event, bool) {
	body := io.Reader(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			http.Error(w, "bad gzip body", http.StatusBadRequest)
			return nil, false
		}
		defer zr.Close()
		body = zr
	}
	dec := json.NewDecoder(body)
	var evs []report.Event
	var prevOff int64
	for {
		var ev report.Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			code := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				code = http.StatusRequestEntityTooLarge
			}
			http.Error(w, fmt.Sprintf("bad event at index %d: %v", len(evs), err), code)
			return nil, false
		}
		// Per-event wire bound: an event whose raw JSON alone is
		// past MaxEventBytes can never be stored (the commit path
		// re-checks the marshaled size, which escaping can inflate).
		off := dec.InputOffset()
		if off-prevOff > MaxEventBytes {
			http.Error(w, fmt.Sprintf("event at index %d exceeds %d bytes", len(evs), MaxEventBytes),
				http.StatusRequestEntityTooLarge)
			return nil, false
		}
		prevOff = off
		if ev.App == "" || ev.Bomb == "" || ev.User == "" {
			http.Error(w, fmt.Sprintf("event at index %d missing app/bomb/user", len(evs)), http.StatusBadRequest)
			return nil, false
		}
		evs = append(evs, ev)
		if len(evs) > maxEvents {
			http.Error(w, fmt.Sprintf("batch exceeds %d events, split it", maxEvents), http.StatusRequestEntityTooLarge)
			return nil, false
		}
	}
	return evs, true
}

// WriteIngestError maps a Store.Ingest error onto the HTTP contract:
// 429 + Retry-After for backpressure, 503 + Retry-After for degraded
// (disk trouble, not load — retryable once an operator intervenes),
// 413 for a batch or event that could never be admitted, 421 for a
// misrouted batch (this node does not own the keys — permanent here,
// the caller must re-route), 500 otherwise. Returns true when err was
// nil and the caller should write its success body.
func WriteIngestError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrBackpressure):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrBatchTooLarge), errors.Is(err, ErrEventTooLarge),
		errors.Is(err, ErrFingerprintTooLarge):
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
	case errors.Is(err, ErrNotOwner):
		http.Error(w, err.Error(), http.StatusMisdirectedRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return false
}
