package market

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"bombdroid/internal/chaos"
	"bombdroid/internal/market/marketfs"
	"bombdroid/internal/report"
)

// TestCrashRecoveryTorture is the acceptance test for the whole
// checkpoint/WAL stack: ingest through a fault-injecting filesystem,
// kill the process at a randomized operation count (mid-append,
// mid-rotation, mid-checkpoint-commit, mid-compaction — wherever the
// counter lands), reopen, and hold two invariants on every iteration:
//
//  1. no acked event is lost — resubmitting any acked batch dedups
//     completely, and
//  2. no event is double-counted — after re-feeding the full stream,
//     the recovered store's verdicts are identical to those of a
//     reference store that never crashed.
//
// 250 seeds keeps the randomized crash points well above the 200 the
// ISSUE demands while staying fast on the in-memory fs.
func TestCrashRecoveryTorture(t *testing.T) {
	iters := 250
	if testing.Short() {
		iters = 40
	}
	for seed := int64(0); seed < int64(iters); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			tortureIteration(t, seed)
		})
	}
}

func tortureIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fa := marketfs.NewFault(nil, seed)
	cfg := Config{
		Dir:    "data",
		Shards: 2,
		// Fsync on: an ack means durable, which is what invariant 1
		// checks. Tiny segments and an aggressive checkpoint cadence
		// put segment rotations, checkpoint commits, and compactions
		// in the crash window on most seeds.
		Fsync:           true,
		DedupWindow:     1 << 20,
		SegmentBytes:    int64(256 + rng.Intn(2048)),
		CheckpointEvery: 1 + rng.Intn(40),
		FS:              fa,
	}
	st, _, err := Open(cfg)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}

	// The crash fires after a random number of filesystem ops past
	// this point — the WAL appends, fsyncs, rotations, checkpoint
	// temp/rename/dir-sync steps, and compaction removes all count.
	fa.CrashAfter(1 + rng.Int63n(600))

	var batches [][]report.Event // every batch ever submitted
	var acked []int              // indices of batches that were acked
	next := 0
	for b := 0; b < 80 && !fa.Crashed(); b++ {
		n := 1 + rng.Intn(8)
		evs := make([]report.Event, n)
		for j := range evs {
			evs[j] = ev(fmt.Sprintf("app-%d", next%3), fmt.Sprintf("bomb-%d", next), "u")
			next++
		}
		batches = append(batches, evs)
		if _, _, err := st.Ingest(evs); err == nil {
			acked = append(acked, len(batches)-1)
		}
	}
	if !fa.Crashed() {
		// The op budget outlasted the stream: crash at rest instead —
		// recovery still has checkpoints and tails to chew on.
		fa.Crash()
	}
	st.Close() // errors ignored: the machine just died
	fa.Recover()

	st2, _, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st2.Close()

	// Invariant 1: every acked batch is fully present — resubmitting
	// it is pure duplicates.
	for _, i := range acked {
		a, d, err := st2.Ingest(batches[i])
		if err != nil {
			t.Fatalf("resubmit acked batch %d: %v", i, err)
		}
		if a != 0 || d != len(batches[i]) {
			t.Fatalf("acked batch %d lost events: resubmit = (%d accepted, %d dups), want (0, %d)",
				i, a, d, len(batches[i]))
		}
	}

	// Invariant 2: re-feed the complete stream into the recovered
	// store and into a never-crashed reference; verdicts must agree
	// exactly. Unacked-but-persisted events are fine — re-feeding
	// converges both stores on one count per distinct key — but a
	// double-applied event (replayed from both checkpoint and tail)
	// would leave the recovered store permanently ahead.
	refCfg := cfg
	refCfg.FS = marketfs.NewFault(nil, seed)
	ref, _, err := Open(refCfg)
	if err != nil {
		t.Fatalf("reference open: %v", err)
	}
	defer ref.Close()
	for i, evs := range batches {
		if _, _, err := st2.Ingest(evs); err != nil {
			t.Fatalf("re-feed batch %d into recovered store: %v", i, err)
		}
		if _, _, err := ref.Ingest(evs); err != nil {
			t.Fatalf("re-feed batch %d into reference: %v", i, err)
		}
	}
	for a := 0; a < 3; a++ {
		app := fmt.Sprintf("app-%d", a)
		got, want := st2.Verdict(app), ref.Verdict(app)
		if got != want {
			t.Fatalf("verdict diverged for %s: recovered %+v, reference %+v", app, got, want)
		}
		// The verdict timeline must also survive the crash: retention is
		// a pure function of the admitted multiset, so the recovered
		// store's history equals the never-crashed reference's exactly.
		tlGot, tlWant := st2.Timeline(app), ref.Timeline(app)
		if !reflect.DeepEqual(tlGot, tlWant) {
			t.Fatalf("timeline diverged for %s:\n recovered %+v\n reference %+v", app, tlGot, tlWant)
		}
	}
}

// TestDegradedModeWALError: a shard whose WAL appends fail enters
// degraded mode — the failing ingest and all later ones on that shard
// return ErrDegraded, the healthy shard keeps accepting, and Health
// reports the split.
func TestDegradedModeWALError(t *testing.T) {
	inj := chaos.NewInjector(chaos.Profile{FsWriteFail: 1}, 1)
	fa := marketfs.NewFault(inj, 1)
	fa.SetFilter(func(p string) bool { return strings.Contains(p, "shard-000") })
	st, _, err := Open(Config{Dir: "data", Shards: 2, FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sawDegraded, sawOK := false, false
	for i := 0; i < 16; i++ {
		_, _, err := st.Ingest([]report.Event{ev(fmt.Sprintf("deg-app-%d", i), "b", "u")})
		switch {
		case err == nil:
			sawOK = true
		case errors.Is(err, ErrDegraded):
			sawDegraded = true
		default:
			t.Fatalf("ingest %d: unexpected error %v", i, err)
		}
	}
	if !sawDegraded || !sawOK {
		t.Fatalf("expected both outcomes across shards (degraded %v, ok %v)", sawDegraded, sawOK)
	}
	if ok, deg := st.Health(); ok != 1 || deg != 1 {
		t.Errorf("Health = (%d ok, %d degraded), want (1, 1)", ok, deg)
	}
	// Degradation is sticky: the broken shard fails fast, reads still work.
	if _, _, err := st.Ingest([]report.Event{ev("deg-app-0", "b2", "u")}); err == nil {
		if ok, deg := st.Health(); deg != 1 {
			t.Errorf("Health after retry = (%d, %d), want degraded to stay 1", ok, deg)
		}
	}
	_ = st.Verdict("deg-app-0") // must not panic or block
}

// TestDegradedModeCheckpointFailures: checkpoint commits that keep
// failing (here: every fsync errors) degrade the shard after the
// failure limit, even though the WAL appends themselves succeed.
func TestDegradedModeCheckpointFailures(t *testing.T) {
	inj := chaos.NewInjector(chaos.Profile{FsSyncFail: 1}, 1)
	fa := marketfs.NewFault(inj, 1)
	fa.SetFilter(func(p string) bool { return strings.Contains(p, "shard-000") })
	// Fsync off so commits themselves never fsync; CheckpointEvery 1
	// makes every commit attempt a checkpoint, whose w.Sync() fails.
	st, _, err := Open(Config{Dir: "data", Shards: 1, Fsync: false, CheckpointEvery: 1, FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	degradedAt := -1
	for i := 0; i < ckptFailureLimit+2; i++ {
		_, _, err := st.Ingest([]report.Event{ev("ckfail-app", fmt.Sprintf("b%d", i), "u")})
		if errors.Is(err, ErrDegraded) {
			degradedAt = i
			break
		}
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if degradedAt != ckptFailureLimit {
		t.Fatalf("degraded after %d ingests, want exactly %d checkpoint failures first", degradedAt, ckptFailureLimit)
	}
	if ok, deg := st.Health(); ok != 0 || deg != 1 {
		t.Errorf("Health = (%d, %d), want (0, 1)", ok, deg)
	}
}

// TestCloseTimeoutWedgedShard: a shard stuck on a hung disk cannot
// stall shutdown past the drain deadline; CloseTimeout names it and
// returns an error (marketd turns that into a nonzero exit).
func TestCloseTimeoutWedgedShard(t *testing.T) {
	fa := marketfs.NewFault(nil, 1)
	st, _, err := Open(Config{Dir: "data", Shards: 1, CheckpointEvery: -1, FS: fa})
	if err != nil {
		t.Fatal(err)
	}
	fa.SetHang(true)
	ingestDone := make(chan error, 1)
	go func() {
		_, _, err := st.Ingest([]report.Event{ev("wedge-app", "b", "u")})
		ingestDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the commit reach the hung Write

	start := time.Now()
	missed, err := st.CloseTimeout(100 * time.Millisecond)
	if err == nil {
		t.Fatal("CloseTimeout on a wedged shard returned nil error")
	}
	if len(missed) != 1 || missed[0] != 0 {
		t.Fatalf("missed = %v, want [0]", missed)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("CloseTimeout blocked %v despite the deadline", waited)
	}

	// Unwedge so the shard goroutine and the ingest can finish; the
	// shard then drains the closed channel and seals on its own.
	fa.SetHang(false)
	select {
	case <-ingestDone:
	case <-time.After(5 * time.Second):
		t.Fatal("ingest never returned after unwedging")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !st.shards[0].sealed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("shard never sealed after unwedging")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
