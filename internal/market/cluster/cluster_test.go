package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bombdroid/internal/market"
	"bombdroid/internal/market/cluster"
	"bombdroid/internal/market/marketfs"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

const (
	testSlots     = 16
	testThreshold = 3
	testCap       = 4096 // > any test's per-app event count, so no eviction
)

// node is one store + HTTP server of a test cluster.
type node struct {
	t   testing.TB
	cfg market.Config
	st  *market.Store
	srv *httptest.Server
}

func startNode(t testing.TB, dir, id string, lo, hi int, fs marketfs.FS) *node {
	t.Helper()
	n := &node{t: t, cfg: market.Config{
		Dir:         dir,
		Shards:      2,
		NodeID:      id,
		Slots:       testSlots,
		Range:       market.ShardRange{Lo: lo, Hi: hi},
		Threshold:   testThreshold,
		TimelineCap: testCap,
		FS:          fs,
		Obs:         obs.NewRegistry(),
	}}
	n.reopen()
	t.Cleanup(func() {
		n.srv.Close()
		n.st.Close()
	})
	return n
}

// reopen (re)opens the store and starts a server for it. After a
// simulated crash, call srv.Close + st.Close + Recover first.
func (n *node) reopen() {
	n.t.Helper()
	n.cfg.Obs = obs.NewRegistry() // per-incarnation registry, like a restarted process
	st, _, err := market.Open(n.cfg)
	if err != nil {
		n.t.Fatalf("Open(%s): %v", n.cfg.Dir, err)
	}
	n.st = st
	n.srv = httptest.NewServer(market.NewHandler(st))
}

// threeNodes starts a cluster tiling [0, testSlots) across three nodes.
func threeNodes(t testing.TB) []*node {
	t.Helper()
	return []*node{
		startNode(t, t.TempDir(), "n0", 0, 5, nil),
		startNode(t, t.TempDir(), "n1", 5, 11, nil),
		startNode(t, t.TempDir(), "n2", 11, testSlots, nil),
	}
}

func urls(nodes []*node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.srv.URL
	}
	return out
}

func newRouter(t testing.TB, nodes []*node) *cluster.Router {
	t.Helper()
	rt, err := cluster.New(context.Background(), cluster.Config{
		Nodes: urls(nodes),
		Retry: market.RetryPolicy{MaxAttempts: 3, Backoff503: 20 * time.Millisecond, Jitter: -1},
		Obs:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return rt
}

// makeEvents synthesizes n events spread over the given apps with
// distinct keys and distinct event times.
func makeEvents(n int, apps ...string) []report.Event {
	evs := make([]report.Event, n)
	for i := range evs {
		evs[i] = report.Event{
			App:    apps[i%len(apps)],
			Bomb:   fmt.Sprintf("bomb-%d", i%7),
			User:   fmt.Sprintf("user-%d", i),
			TimeMs: int64(1000 + i*13),
			Info:   "cluster-test",
		}
	}
	return evs
}

// reference opens a standalone full-range store with the same merge
// knobs, feeds it every event, and returns it.
func reference(t testing.TB, evs []report.Event) *market.Store {
	t.Helper()
	st, _, err := market.Open(market.Config{
		Dir:         t.TempDir(),
		Shards:      2,
		Threshold:   testThreshold,
		TimelineCap: testCap,
		Obs:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("Open reference: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	if _, _, err := st.Ingest(evs); err != nil {
		t.Fatalf("reference ingest: %v", err)
	}
	return st
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assertFederationMatches compares the cluster's federated verdict and
// timeline byte-for-byte against the single-node reference for each app.
func assertFederationMatches(t *testing.T, rt *cluster.Router, ref *market.Store, apps ...string) {
	t.Helper()
	ctx := context.Background()
	for _, app := range apps {
		fv, err := rt.VerdictCtx(ctx, app)
		if err != nil {
			t.Fatalf("federated verdict(%s): %v", app, err)
		}
		if got, want := mustJSON(t, fv), mustJSON(t, ref.Verdict(app)); got != want {
			t.Errorf("verdict(%s):\n  federated %s\n  reference %s", app, got, want)
		}
		ft, err := rt.TimelineCtx(ctx, app)
		if err != nil {
			t.Fatalf("federated timeline(%s): %v", app, err)
		}
		if got, want := mustJSON(t, ft), mustJSON(t, ref.Timeline(app)); got != want {
			t.Errorf("timeline(%s):\n  federated %s\n  reference %s", app, got, want)
		}
	}
}

// TestFederationMatchesReference is the acceptance test: a 3-node
// cluster fed a batch stream through the router serves verdicts and
// timelines byte-identical to one standalone store fed the same
// events — across different arrival orders, because admission state
// is a pure function of the admitted multiset.
func TestFederationMatchesReference(t *testing.T) {
	apps := []string{"app-a", "app-b", "app-c"}
	evs := makeEvents(600, apps...)
	ref := reference(t, evs)

	orders := map[string]func([]report.Event) []report.Event{
		"forward": func(e []report.Event) []report.Event { return e },
		"reversed": func(e []report.Event) []report.Event {
			out := make([]report.Event, len(e))
			for i := range e {
				out[i] = e[len(e)-1-i]
			}
			return out
		},
		"interleaved": func(e []report.Event) []report.Event {
			var out []report.Event
			for i := 0; i < len(e); i += 2 {
				out = append(out, e[i])
			}
			for i := 1; i < len(e); i += 2 {
				out = append(out, e[i])
			}
			return out
		},
	}
	for name, perm := range orders {
		t.Run(name, func(t *testing.T) {
			nodes := threeNodes(t)
			rt := newRouter(t, nodes)
			stream := perm(evs)
			for off := 0; off < len(stream); off += 97 { // uneven batches on purpose
				end := off + 97
				if end > len(stream) {
					end = len(stream)
				}
				ack, err := rt.PostCtx(context.Background(), stream[off:end])
				if err != nil {
					t.Fatalf("PostCtx: %v", err)
				}
				if ack.Accepted+ack.Duplicates != end-off {
					t.Fatalf("ack %d+%d, want %d events accounted", ack.Accepted, ack.Duplicates, end-off)
				}
			}
			assertFederationMatches(t, rt, ref, apps...)
		})
	}
}

// TestFederationSurvivesNodeCrash crashes one node mid-stream on a
// fault-injecting filesystem, restarts it from its WAL, resends the
// stream (dedup absorbs the overlap), and requires the federated
// state to still match the reference byte-for-byte.
func TestFederationSurvivesNodeCrash(t *testing.T) {
	apps := []string{"app-a", "app-b"}
	evs := makeEvents(400, apps...)
	ref := reference(t, evs)

	fa := marketfs.NewFault(nil, 1)
	nodes := []*node{
		startNode(t, t.TempDir(), "n0", 0, 5, fa),
		startNode(t, t.TempDir(), "n1", 5, 11, nil),
		startNode(t, t.TempDir(), "n2", 11, testSlots, nil),
	}
	rt := newRouter(t, nodes)

	// First half flows normally, then n0's disk starts failing.
	half := len(evs) / 2
	if _, err := rt.PostCtx(context.Background(), evs[:half]); err != nil {
		t.Fatalf("first half: %v", err)
	}
	fa.CrashAfter(20)
	for off := half; off < len(evs); off += 50 {
		end := off + 50
		if end > len(evs) {
			end = len(evs)
		}
		// Errors are expected once the crash point hits; the retry
		// policy's bounded attempts keep the test moving.
		rt.PostCtx(context.Background(), evs[off:end])
	}
	if !fa.Crashed() {
		fa.Crash() // ensure the crash happened even if writes stopped short
	}

	// The node process "dies" and restarts: server down, store
	// abandoned, filesystem recovered, WAL replayed.
	n0 := nodes[0]
	n0.srv.Close()
	n0.st.Close()
	fa.Recover()
	n0.reopen()

	// Membership is static but URLs changed with the restart, so the
	// operator's router restarts too.
	rt = newRouter(t, nodes)

	// Resend everything: events that were durably acked dedup away,
	// events lost in the crash get admitted now.
	for off := 0; off < len(evs); off += 64 {
		end := off + 64
		if end > len(evs) {
			end = len(evs)
		}
		if _, err := rt.PostCtx(context.Background(), evs[off:end]); err != nil {
			t.Fatalf("resend: %v", err)
		}
	}
	assertFederationMatches(t, rt, ref, apps...)
}

// TestRouterRefusesBadGeometry: membership that does not tile the
// slot space, or disagrees on merge knobs, must refuse to assemble.
func TestRouterRefusesBadGeometry(t *testing.T) {
	ctx := context.Background()
	n0 := startNode(t, t.TempDir(), "n0", 0, 5, nil)
	n2 := startNode(t, t.TempDir(), "n2", 11, testSlots, nil)

	// Gap: 5..11 unowned.
	if _, err := cluster.New(ctx, cluster.Config{Nodes: []string{n0.srv.URL, n2.srv.URL}}); err == nil ||
		!strings.Contains(err.Error(), "tile") {
		t.Fatalf("gap accepted (err = %v)", err)
	}

	// Overlap: two nodes both claiming slot 4.
	nOver := startNode(t, t.TempDir(), "nx", 4, testSlots, nil)
	if _, err := cluster.New(ctx, cluster.Config{Nodes: []string{n0.srv.URL, nOver.srv.URL}}); err == nil ||
		!strings.Contains(err.Error(), "tile") {
		t.Fatalf("overlap accepted (err = %v)", err)
	}

	// Threshold drift would merge inconsistently.
	drift := &node{t: t, cfg: market.Config{
		Dir: t.TempDir(), Shards: 2, NodeID: "nd", Slots: testSlots,
		Range: market.ShardRange{Lo: 5, Hi: testSlots}, Threshold: testThreshold + 2,
		TimelineCap: testCap, Obs: obs.NewRegistry(),
	}}
	drift.reopen()
	t.Cleanup(func() { drift.srv.Close(); drift.st.Close() })
	if _, err := cluster.New(ctx, cluster.Config{Nodes: []string{n0.srv.URL, drift.srv.URL}}); err == nil ||
		!strings.Contains(err.Error(), "geometry") {
		t.Fatalf("threshold drift accepted (err = %v)", err)
	}
}

// TestRouterHTTPFront drives the router's own HTTP surface: routed
// writes with trace propagation and the server-timing answer,
// federated reads, and aggregate health.
func TestRouterHTTPFront(t *testing.T) {
	nodes := threeNodes(t)
	rt := newRouter(t, nodes)
	front := httptest.NewServer(cluster.NewHandler(rt))
	defer front.Close()

	evs := makeEvents(200, "app-a")
	ref := reference(t, evs)

	// A traced post through the front must come back with the router's
	// receive→all-acked timing, like a single node would answer.
	cl := &market.Client{BaseURL: front.URL, Trace: true}
	pr, err := cl.Reports().Post(context.Background(), evs)
	if err != nil {
		t.Fatalf("PostCtx through front: %v", err)
	}
	if pr.Accepted != len(evs) {
		t.Fatalf("accepted = %d, want %d", pr.Accepted, len(evs))
	}
	if cl.ServerUs() <= 0 {
		t.Fatal("no server-timing answer from the router front")
	}

	// Federated reads through the plain single-node client.
	v, err := cl.Verdicts().Get(context.Background(), "app-a")
	if err != nil {
		t.Fatalf("verdict: %v", err)
	}
	if got, want := mustJSON(t, v), mustJSON(t, ref.Verdict("app-a")); got != want {
		t.Errorf("front verdict %s, want %s", got, want)
	}
	tl, err := cl.Timelines().Get(context.Background(), "app-a")
	if err != nil {
		t.Fatalf("timeline: %v", err)
	}
	if got, want := mustJSON(t, tl), mustJSON(t, ref.Timeline("app-a")); got != want {
		t.Errorf("front timeline %s, want %s", got, want)
	}

	// The cluster describes itself as one full-range logical node, so
	// fronts can stack.
	d, err := cl.Node().Get(context.Background())
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	if d.RangeLo != 0 || d.RangeHi != testSlots || d.Shards != 6 {
		t.Errorf("cluster desc = %+v, want full range, 6 shards", d)
	}

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	var health struct {
		Status string               `json:"status"`
		Nodes  []cluster.NodeHealth `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Nodes) != 3 {
		t.Errorf("health = %+v, want ok with 3 nodes", health)
	}
}

// TestRouterReportsMembershipDrift: a member that answers 421 (its
// pinned range no longer matches what it advertised at discovery)
// surfaces as a permanent routing error, not a retry loop.
func TestRouterReportsMembershipDrift(t *testing.T) {
	// A fake member advertises full ownership but refuses every post,
	// simulating a node restarted with a different range behind an
	// unchanged URL.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/node", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(market.NodeDesc{
			NodeID: "liar", Slots: testSlots, RangeLo: 0, RangeHi: testSlots,
			Shards: 1, Threshold: testThreshold, TimelineCap: testCap,
		})
	})
	mux.HandleFunc("POST /v1/reports", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "not my range", http.StatusMisdirectedRequest)
	})
	fake := httptest.NewServer(mux)
	defer fake.Close()

	reg := obs.NewRegistry()
	rt, err := cluster.New(context.Background(), cluster.Config{Nodes: []string{fake.URL}, Obs: reg})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	_, err = rt.PostCtx(context.Background(), makeEvents(4, "app-a"))
	if err == nil || !strings.Contains(err.Error(), "shard range") {
		t.Fatalf("drifted member err = %v, want ErrNotOwner passthrough", err)
	}
	if n := reg.Counter("cluster_router_misroutes_total").Value(); n != 1 {
		t.Errorf("misroute counter = %d, want 1", n)
	}

	// And through the HTTP front that is a 502, not a 421 — the client
	// did nothing wrong.
	front := httptest.NewServer(cluster.NewHandler(rt))
	defer front.Close()
	cl := &market.Client{BaseURL: front.URL}
	_, err = cl.Reports().Post(context.Background(), makeEvents(4, "app-a"))
	if err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("front err = %v, want 502", err)
	}
}

// TestPerNodeRegistriesAggregate: each node's registry merges into one
// fleet view; per-shard ingest counters add commutatively, so the
// aggregate equals the cluster-wide accepted count.
func TestPerNodeRegistriesAggregate(t *testing.T) {
	nodes := threeNodes(t)
	rt := newRouter(t, nodes)
	evs := makeEvents(300, "app-a", "app-b")
	ack, err := rt.PostCtx(context.Background(), evs)
	if err != nil {
		t.Fatalf("PostCtx: %v", err)
	}

	fleet := obs.NewRegistry()
	for _, n := range nodes {
		n.st.Obs().MergeInto(fleet)
	}
	// Router metrics can ride along in the same aggregate.
	rt.Obs().MergeInto(fleet)

	var ingested int64
	snap := fleet.Snapshot()
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "market_ingest_events_total") {
			ingested += v
		}
	}
	if ingested != int64(ack.Accepted) {
		t.Errorf("aggregated ingest counters = %d, want %d", ingested, ack.Accepted)
	}
	if snap.Counters["cluster_router_batches_total"] != 1 {
		t.Errorf("router batches = %d, want 1", snap.Counters["cluster_router_batches_total"])
	}
	// Every event was routed to a node that actually admitted it: the
	// per-node routed counters must also sum to the batch size.
	var routed int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "cluster_node_events_total") {
			routed += v
		}
	}
	if routed != int64(len(evs)) {
		t.Errorf("routed counters = %d, want %d", routed, len(evs))
	}
}

// fpSet builds a digest set overlapping a shared base, like a family
// of repackaged variants.
func fpSet(base []string, app string, drop int) []string {
	set := append([]string(nil), base[drop:]...)
	for i := 0; i < drop; i++ {
		set = append(set, fmt.Sprintf("%s-own-%d", app, i))
	}
	return set
}

// TestFederatedFingerprints is the static-channel acceptance test: a
// 3-node cluster loaded with fingerprints through the router serves
// similar answers and fused verdicts byte-identical to one standalone
// full-range store holding the same corpus — candidate, document-
// frequency, and corpus-size federation included.
func TestFederatedFingerprints(t *testing.T) {
	apps := make([]string, 8)
	base := make([]string, 12)
	for i := range base {
		base[i] = fmt.Sprintf("base-digest-%02d", i)
	}
	for i := range apps {
		apps[i] = fmt.Sprintf("app-%d", i)
	}
	evs := makeEvents(9, "app-0") // flags app-0's reports channel (threshold 3)

	// Reference: one full-range store.
	ref := reference(t, evs)
	for i, app := range apps {
		if _, err := ref.PutFingerprint(market.Fingerprint{App: app, Digests: fpSet(base, app, i)}); err != nil {
			t.Fatalf("reference put(%s): %v", app, err)
		}
	}

	nodes := threeNodes(t)
	rt := newRouter(t, nodes)
	ctx := context.Background()
	if _, err := rt.PostCtx(ctx, evs); err != nil {
		t.Fatal(err)
	}
	for i, app := range apps {
		ack, err := rt.PutFingerprintCtx(ctx, market.Fingerprint{App: app, Digests: fpSet(base, app, i)})
		if err != nil {
			t.Fatalf("federated put(%s): %v", app, err)
		}
		if !ack.Updated {
			t.Fatalf("federated put(%s) ack = %+v, want updated", app, ack)
		}
	}

	// The fingerprints landed spread across nodes, not on one.
	holders := 0
	for _, n := range nodes {
		if held := n.st.Obs(); held != nil {
			var local int
			for _, app := range apps {
				if _, err := n.st.Fingerprint(app); err == nil {
					local++
				}
			}
			if local > 0 {
				holders++
			}
			if local == len(apps) {
				t.Errorf("node %s holds every fingerprint, want slot spread", n.cfg.NodeID)
			}
		}
	}
	if holders < 2 {
		t.Errorf("fingerprints on %d nodes, want ≥ 2", holders)
	}

	for _, app := range apps {
		fsim, err := rt.SimilarCtx(ctx, app)
		if err != nil {
			t.Fatalf("federated similar(%s): %v", app, err)
		}
		rsim, err := ref.Similar(app)
		if err != nil {
			t.Fatalf("reference similar(%s): %v", app, err)
		}
		if got, want := mustJSON(t, fsim), mustJSON(t, rsim); got != want {
			t.Errorf("similar(%s):\n  federated %s\n  reference %s", app, got, want)
		}
		fv, err := rt.VerdictCtx(ctx, app)
		if err != nil {
			t.Fatalf("federated verdict(%s): %v", app, err)
		}
		if got, want := mustJSON(t, fv), mustJSON(t, ref.Verdict(app)); got != want {
			t.Errorf("fused verdict(%s):\n  federated %s\n  reference %s", app, got, want)
		}
	}

	// app-1 is a near-duplicate of the reports-flagged app-0: its fused
	// verdict must flag through the similarity channel on both surfaces.
	fv, err := rt.VerdictCtx(ctx, "app-1")
	if err != nil {
		t.Fatal(err)
	}
	if !fv.Flagged || !fv.Channels.Similarity.Flagged || fv.Channels.Similarity.Neighbor != "app-0" {
		t.Errorf("federated fused verdict(app-1) = %+v, want similarity-flagged via app-0", fv)
	}

	// The router's HTTP front serves the same fingerprint surface.
	front := httptest.NewServer(cluster.NewHandler(rt))
	defer front.Close()
	cl := &market.Client{BaseURL: front.URL}
	fp, err := cl.Fingerprints().Get(ctx, "app-2")
	if err != nil {
		t.Fatalf("front fingerprint get: %v", err)
	}
	want, _ := ref.Fingerprint("app-2")
	if got, wantJSON := mustJSON(t, fp), mustJSON(t, want); got != wantJSON {
		t.Errorf("front fingerprint = %s, want %s", got, wantJSON)
	}
	sim, err := cl.Fingerprints().Similar(ctx, "app-1")
	if err != nil {
		t.Fatalf("front similar: %v", err)
	}
	rsim, _ := ref.Similar("app-1")
	if got, wantJSON := mustJSON(t, sim), mustJSON(t, rsim); got != wantJSON {
		t.Errorf("front similar = %s, want %s", got, wantJSON)
	}
	ack, err := cl.Fingerprints().Put(ctx, market.Fingerprint{App: "app-9", Digests: fpSet(base, "app-9", 3)})
	if err != nil || !ack.Updated {
		t.Errorf("front put = %+v (%v), want updated ack", ack, err)
	}
}
