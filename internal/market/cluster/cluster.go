// Package cluster is marketd's fan-out tier: a static-membership
// Router that partitions report batches across a set of market nodes
// by the shared FNV slot hash, fans the pieces out concurrently with
// per-node retry, and serves *federated* reads — verdicts and
// timelines merged commutatively across every node's tallies and
// per-shard timeline buffers.
//
// The router owns no state beyond its membership table. All
// durability lives in the nodes; the router can crash and restart
// freely (run several behind one DNS name — they make identical
// routing decisions because ownership is a pure function of the key).
// Membership is static by design: the node set and their shard
// ranges are pinned in each node's meta.json, discovered once at
// startup from GET /v1/node, and validated to tile the slot space
// exactly. Re-sharding is an offline operation in this design, which
// is what lets a federated verdict be byte-identical to a single-node
// reference (see DESIGN.md §16) — there is never a moment where two
// nodes both think they own a key.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"bombdroid/internal/market"
	"bombdroid/internal/market/similarity"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// Config describes a Router's membership and transport.
type Config struct {
	// Nodes are the member base URLs, e.g. "http://127.0.0.1:8845".
	// Order does not matter; the router sorts members by owned range.
	Nodes []string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Gzip compresses fan-out request bodies.
	Gzip bool
	// Retry is the per-node fan-out retry policy (zero value = the
	// shared defaults). Routers sit in the request path, so unlike a
	// load tool they should bound MaxAttempts; New defaults it to 3.
	Retry market.RetryPolicy
	// Obs receives the router's metrics; nil records nothing.
	Obs *obs.Registry
}

// member is one node as the router sees it.
type member struct {
	url    string
	desc   market.NodeDesc
	client *market.Client
	events *obs.Counter // events routed here
	r429   *obs.Counter
	r503   *obs.Counter
}

// name is the member's display id in acks and errors.
func (m *member) name() string {
	if m.desc.NodeID != "" {
		return m.desc.NodeID
	}
	return m.url
}

// Router fans report batches out across the cluster and federates
// reads back together. Safe for concurrent use.
type Router struct {
	cfg     Config
	members []*member // sorted by RangeLo
	slots   int
	owner   []int // slot → members index

	batches  *obs.Counter
	fanoutUs *obs.Histogram
	misrout  *obs.Counter
}

// New discovers every configured node's descriptor and assembles the
// routing table. It refuses to start unless the members agree on the
// slot count and the merge-affecting knobs (threshold, timeline cap)
// and their ranges tile [0, slots) exactly — overlaps would
// double-admit keys, gaps would black-hole them, and either breaks
// the federation-equals-reference guarantee. Discovery is one pass;
// callers that race node startup (cmd/marketd's router mode) retry
// New until it succeeds.
func New(ctx context.Context, cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry.MaxAttempts = 3
	}
	r := &Router{
		cfg:      cfg,
		batches:  cfg.Obs.Counter("cluster_router_batches_total"),
		fanoutUs: cfg.Obs.Histogram("cluster_router_fanout_us", obs.ExpBuckets(50, 4, 12), obs.Volatile()),
		misrout:  cfg.Obs.Counter("cluster_router_misroutes_total"),
	}
	for _, u := range cfg.Nodes {
		u = strings.TrimRight(u, "/")
		cl := &market.Client{BaseURL: u, HTTPClient: cfg.HTTPClient, Gzip: cfg.Gzip}
		desc, err := cl.Node().Get(ctx)
		if err != nil {
			return nil, fmt.Errorf("cluster: discovering %s: %w", u, err)
		}
		r.members = append(r.members, &member{
			url:    u,
			desc:   desc,
			client: cl,
			events: cfg.Obs.Counter(obs.L("cluster_node_events_total", "node", desc.NodeID)),
			r429:   cfg.Obs.Counter(obs.L("cluster_node_retries_total", "node", desc.NodeID, "code", "429")),
			r503:   cfg.Obs.Counter(obs.L("cluster_node_retries_total", "node", desc.NodeID, "code", "503")),
		})
	}
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].desc.RangeLo < r.members[j].desc.RangeLo })

	first := r.members[0].desc
	r.slots = first.Slots
	want := 0
	for _, m := range r.members {
		d := m.desc
		if d.Slots != first.Slots || d.Threshold != first.Threshold || d.TimelineCap != first.TimelineCap {
			return nil, fmt.Errorf("cluster: node %s disagrees on geometry (slots=%d threshold=%d cap=%d, want %d/%d/%d)",
				m.name(), d.Slots, d.Threshold, d.TimelineCap, first.Slots, first.Threshold, first.TimelineCap)
		}
		if d.SimilarityTau != first.SimilarityTau || d.SimilarityK != first.SimilarityK {
			// τ and K shape the fused verdict; nodes disagreeing would
			// make the federated answer depend on which node is asked.
			return nil, fmt.Errorf("cluster: node %s disagrees on similarity knobs (tau=%g k=%d, want %g/%d)",
				m.name(), d.SimilarityTau, d.SimilarityK, first.SimilarityTau, first.SimilarityK)
		}
		if d.RangeLo != want {
			return nil, fmt.Errorf("cluster: ranges do not tile the slot space: node %s owns %s, want lo=%d",
				m.name(), d.Range(), want)
		}
		want = d.RangeHi
	}
	if want != r.slots {
		return nil, fmt.Errorf("cluster: ranges do not tile the slot space: coverage ends at %d of %d slots", want, r.slots)
	}
	r.owner = make([]int, r.slots)
	for i, m := range r.members {
		for s := m.desc.RangeLo; s < m.desc.RangeHi; s++ {
			r.owner[s] = i
		}
	}
	return r, nil
}

// Members reports the discovered node descriptors, sorted by range.
func (r *Router) Members() []market.NodeDesc {
	out := make([]market.NodeDesc, len(r.members))
	for i, m := range r.members {
		out[i] = m.desc
	}
	return out
}

// Desc describes the whole cluster as one logical full-range node —
// which is exactly what a router is from the outside, so a router can
// itself be a member of a larger federation tier.
func (r *Router) Desc() market.NodeDesc {
	var shards int
	for _, m := range r.members {
		shards += m.desc.Shards
	}
	return market.NodeDesc{
		NodeID:        "cluster",
		Slots:         r.slots,
		RangeLo:       0,
		RangeHi:       r.slots,
		Shards:        shards,
		Threshold:     r.members[0].desc.Threshold,
		TimelineCap:   r.members[0].desc.TimelineCap,
		SimilarityTau: r.members[0].desc.SimilarityTau,
		SimilarityK:   r.members[0].desc.SimilarityK,
	}
}

// NodeAck is one node's share of a routed batch.
type NodeAck struct {
	Node       string `json:"node"`
	Events     int    `json:"events"`
	Accepted   int    `json:"accepted"`
	Duplicates int    `json:"duplicates"`
	Retries429 int    `json:"retries_429,omitempty"`
	Retries503 int    `json:"retries_503,omitempty"`
	Err        string `json:"err,omitempty"`
}

// Ack is the cluster-wide result of one PostCtx: the summed accepted/
// duplicate counts (the same shape a single node acks) plus per-node
// accounting so backpressure and failures stay attributable.
type Ack struct {
	Accepted   int       `json:"accepted"`
	Duplicates int       `json:"duplicates"`
	Nodes      []NodeAck `json:"nodes"`
}

// PostCtx partitions one batch by key ownership and fans the pieces
// out to their owning nodes concurrently, retrying each node's share
// through the configured policy. The Ack always carries whatever was
// acknowledged; a non-nil error means at least one node's share was
// not fully admitted (the error wraps the node errors, so errors.Is
// still matches ErrBackpressure/ErrDegraded for callers with their
// own outer retry loop).
func (r *Router) PostCtx(ctx context.Context, evs []report.Event) (Ack, error) {
	return r.PostTracedCtx(ctx, evs, "")
}

// PostTracedCtx is PostCtx propagating an obs.TraceHeader id through
// every fan-out hop, so a traced device report stays traceable on
// whichever node it lands.
func (r *Router) PostTracedCtx(ctx context.Context, evs []report.Event, traceID string) (Ack, error) {
	r.batches.Inc()
	start := time.Now()
	parts := make([][]report.Event, len(r.members))
	for _, ev := range evs {
		i := r.owner[market.Slot(ev.Key(), r.slots)]
		parts[i] = append(parts[i], ev)
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ack  Ack
		errs []error
	)
	ack.Nodes = make([]NodeAck, 0, len(r.members))
	for i, m := range r.members {
		part := parts[i]
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(m *member, part []report.Event) {
			defer wg.Done()
			var res market.PostResult
			stats, err := r.cfg.Retry.Do(ctx, func(ctx context.Context) error {
				var perr error
				res, perr = m.client.Reports().PostTraced(ctx, part, traceID)
				return perr
			})
			m.events.Add(int64(len(part)))
			m.r429.Add(int64(stats.Retries429))
			m.r503.Add(int64(stats.Retries503))
			na := NodeAck{
				Node:       m.name(),
				Events:     len(part),
				Accepted:   res.Accepted,
				Duplicates: res.Duplicates,
				Retries429: stats.Retries429,
				Retries503: stats.Retries503,
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				na.Err = err.Error()
				errs = append(errs, fmt.Errorf("node %s: %w", m.name(), err))
				if errors.Is(err, market.ErrNotOwner) {
					// A member refused its share: membership drifted under
					// us (a node restarted with a different range). That is
					// an operator problem, not a client problem.
					r.misrout.Inc()
				}
			}
			ack.Accepted += res.Accepted
			ack.Duplicates += res.Duplicates
			ack.Nodes = append(ack.Nodes, na)
		}(m, part)
	}
	wg.Wait()
	// Deterministic ack order regardless of which node answered first.
	sort.Slice(ack.Nodes, func(i, j int) bool { return ack.Nodes[i].Node < ack.Nodes[j].Node })
	r.fanoutUs.Observe(time.Since(start).Microseconds())
	if len(errs) > 0 {
		return ack, errors.Join(errs...)
	}
	return ack, nil
}

// reportsCtx federates one app's reports channel: per-node detection
// tallies are fetched concurrently and summed. Addition commutes, and
// ownership guarantees each admitted (app,bomb,user) key was counted
// on exactly one node, so the result equals — field for field — the
// channel a single node holding every event would serve.
func (r *Router) reportsCtx(ctx context.Context, app string) (market.ReportsChannel, error) {
	tallies := make([]market.ReportsChannel, len(r.members))
	err := r.eachMember(ctx, func(i int, m *member) error {
		ch, err := m.client.Verdicts().Reports(ctx, app)
		tallies[i] = ch
		return err
	})
	if err != nil {
		return market.ReportsChannel{}, err
	}
	out := market.ReportsChannel{Threshold: r.members[0].desc.Threshold}
	for _, ch := range tallies {
		out.Detections += ch.Detections
	}
	out.Flagged = out.Detections >= int64(out.Threshold)
	return out, nil
}

// VerdictCtx federates GET /v1/apps/{app}/verdict into the same fused
// multi-channel Verdict a single full-range node serves: the summed
// reports channel, plus the similarity channel evaluated over the
// federated top-K neighbor list (each qualifying neighbor's reports
// tally summed across nodes in turn). Determinism carries through
// because both rounds are integer-exact sums over disjoint node
// state.
func (r *Router) VerdictCtx(ctx context.Context, app string) (market.Verdict, error) {
	reports, err := r.reportsCtx(ctx, app)
	if err != nil {
		return market.Verdict{}, err
	}
	sim, err := r.similarityChannelCtx(ctx, app)
	if err != nil {
		return market.Verdict{}, err
	}
	return market.Verdict{
		App:     app,
		Flagged: reports.Flagged || sim.Flagged,
		Channels: market.VerdictChannels{
			Reports:    reports,
			Similarity: sim,
		},
	}, nil
}

// similarityChannelCtx mirrors the store's fusion rule over the
// federated neighbor list: the first top-K neighbor (score desc, app
// asc) scoring ≥ τ whose federated reports tally crosses the
// threshold flags the channel.
func (r *Router) similarityChannelCtx(ctx context.Context, app string) (market.SimilarityChannel, error) {
	out := market.SimilarityChannel{Tau: r.members[0].desc.SimilarityTau}
	sim, err := r.SimilarCtx(ctx, app)
	if errors.Is(err, market.ErrNoFingerprint) {
		return out, nil
	}
	if err != nil {
		return market.SimilarityChannel{}, err
	}
	for _, n := range sim.Neighbors {
		if n.Score < out.Tau {
			break // sorted by score desc: nothing below τ qualifies
		}
		reports, err := r.reportsCtx(ctx, n.App)
		if err != nil {
			return market.SimilarityChannel{}, err
		}
		if reports.Flagged {
			out.Neighbor, out.Score, out.Flagged = n.App, n.Score, true
			break
		}
	}
	return out, nil
}

// fpOwner is the member owning an app's fingerprint slot. Unlike
// report events (which slot by the full event key), fingerprints slot
// by app name alone, so one node serializes every write for an app.
func (r *Router) fpOwner(app string) *member {
	return r.members[r.owner[market.Slot(app, r.slots)]]
}

// PutFingerprintCtx routes a fingerprint upload to the owning node.
func (r *Router) PutFingerprintCtx(ctx context.Context, fp market.Fingerprint) (market.FingerprintAck, error) {
	m := r.fpOwner(fp.App)
	var ack market.FingerprintAck
	_, err := r.cfg.Retry.Do(ctx, func(ctx context.Context) error {
		var perr error
		ack, perr = m.client.Fingerprints().Put(ctx, fp)
		return perr
	})
	if err != nil {
		return market.FingerprintAck{}, fmt.Errorf("node %s: %w", m.name(), err)
	}
	return ack, nil
}

// FingerprintCtx reads an app's fingerprint from its owning node.
func (r *Router) FingerprintCtx(ctx context.Context, app string) (market.Fingerprint, error) {
	return r.fpOwner(app).client.Fingerprints().Get(ctx, app)
}

// SimilarCtx federates GET /v1/apps/{app}/similar in two rounds:
//
//  1. probe — fetch the query fingerprint from its owning node, then
//     ask every node for its local candidates (apps sharing ≥1
//     digest) concurrently;
//  2. weigh — collect the union of digests across query and
//     candidates, ask every node for its local document frequencies,
//     and sum them (each app's fingerprint lives on exactly one node,
//     so the sums equal a single full-range node's df and corpus
//     size).
//
// The merged candidates then go through the exact Rank/TopK the store
// itself runs, so the federated neighbor list — scores included — is
// byte-identical to the single-node reference.
func (r *Router) SimilarCtx(ctx context.Context, app string) (market.Similar, error) {
	fp, err := r.FingerprintCtx(ctx, app)
	if err != nil {
		return market.Similar{}, err
	}

	probes := make([]market.ProbeResponse, len(r.members))
	err = r.eachMember(ctx, func(i int, m *member) error {
		p, perr := m.client.Fingerprints().Probe(ctx, market.ProbeRequest{Digests: fp.Digests, Exclude: app})
		probes[i] = p
		return perr
	})
	if err != nil {
		return market.Similar{}, err
	}
	cands := make(map[string][]string)
	digestSet := make(map[string]struct{}, len(fp.Digests))
	for _, d := range fp.Digests {
		digestSet[d] = struct{}{}
	}
	var apps int64
	for _, p := range probes {
		apps += p.Apps
		for _, c := range p.Candidates {
			cands[c.App] = c.Digests
			for _, d := range c.Digests {
				digestSet[d] = struct{}{}
			}
		}
	}

	union := make([]string, 0, len(digestSet))
	for d := range digestSet {
		union = append(union, d)
	}
	df := make(map[string]int64, len(union))
	var dfMu sync.Mutex
	err = r.eachMember(ctx, func(i int, m *member) error {
		resp, perr := m.client.Fingerprints().DF(ctx, market.DFRequest{Digests: union})
		if perr != nil {
			return perr
		}
		dfMu.Lock()
		for d, n := range resp.DF {
			df[d] += n
		}
		dfMu.Unlock()
		return nil
	})
	if err != nil {
		return market.Similar{}, err
	}

	ns := similarity.TopK(
		similarity.Rank(fp.Digests, cands, func(d string) int64 { return df[d] }, apps),
		r.members[0].desc.SimilarityK)
	return market.Similar{
		App:       app,
		Known:     true,
		Tau:       r.members[0].desc.SimilarityTau,
		Neighbors: ns,
	}, nil
}

// TimelineCtx federates GET /v1/apps/{app}/timeline: every node's raw
// per-shard timeline parts are fetched concurrently and merged by the
// same k-way merge a single store runs over its own shards
// (market.MergeTimelineParts). Because the parts carry the tie hashes
// and evicted counts, the merged timeline is byte-identical to the
// single-node reference whenever no part has evicted, and keeps the
// head-through-threshold entries and final counts exact even under
// eviction — the same guarantee the store itself makes across
// restarts.
func (r *Router) TimelineCtx(ctx context.Context, app string) (market.Timeline, error) {
	raws := make([]market.RawTimeline, len(r.members))
	err := r.eachMember(ctx, func(i int, m *member) error {
		raw, err := m.client.Timelines().Raw(ctx, app)
		raws[i] = raw
		return err
	})
	if err != nil {
		return market.Timeline{}, err
	}
	var parts []market.TimelinePart
	for i, raw := range raws {
		if raw.Threshold != raws[0].Threshold || raw.Head != raws[0].Head {
			return market.Timeline{}, fmt.Errorf("cluster: node %s timeline geometry drifted (threshold=%d head=%d, want %d/%d)",
				r.members[i].name(), raw.Threshold, raw.Head, raws[0].Threshold, raws[0].Head)
		}
		parts = append(parts, raw.Parts...)
	}
	return market.MergeTimelineParts(app, raws[0].Threshold, raws[0].Head, parts), nil
}

// NodeHealth is one member's health as seen from the router.
type NodeHealth struct {
	Node           string `json:"node"`
	Status         string `json:"status"` // "ok" | "degraded" | "unreachable"
	ShardsOK       int    `json:"shards_ok"`
	ShardsDegraded int    `json:"shards_degraded"`
}

// HealthCtx polls every member's /healthz concurrently. ok is true
// only when every node answered and none is degraded.
func (r *Router) HealthCtx(ctx context.Context) (ok bool, nodes []NodeHealth) {
	nodes = make([]NodeHealth, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			nodes[i] = m.health(ctx)
		}(i, m)
	}
	wg.Wait()
	ok = true
	for _, n := range nodes {
		if n.Status != "ok" {
			ok = false
		}
	}
	return ok, nodes
}

func (m *member) health(ctx context.Context) NodeHealth {
	out := NodeHealth{Node: m.name(), Status: "unreachable"}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/healthz", nil)
	if err != nil {
		return out
	}
	cl := m.client.HTTPClient
	if cl == nil {
		cl = http.DefaultClient
	}
	resp, err := cl.Do(req)
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	var body struct {
		Status         string `json:"status"`
		ShardsOK       int    `json:"shards_ok"`
		ShardsDegraded int    `json:"shards_degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return out
	}
	out.Status = body.Status
	out.ShardsOK = body.ShardsOK
	out.ShardsDegraded = body.ShardsDegraded
	return out
}

// eachMember runs f concurrently for every member and joins errors.
func (r *Router) eachMember(ctx context.Context, f func(i int, m *member) error) error {
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			if err := f(i, m); err != nil {
				errs[i] = fmt.Errorf("node %s: %w", m.name(), err)
			}
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Obs exposes the router's metrics registry.
func (r *Router) Obs() *obs.Registry { return r.cfg.Obs }
