package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"bombdroid/internal/market"
	"bombdroid/internal/obs"
)

// maxRouterEvents bounds one POST body at the router front. The
// router cannot know each node's queue capacity at handler-build
// time, so it uses the wire ceiling; a share that overflows a node's
// queues still gets that node's own 413/429 answer through the
// fan-out.
const maxRouterEvents = 65536

// NewHandler wires a Router into the same HTTP surface a single
// marketd node serves, so clients — report.HTTPSink included — cannot
// tell a cluster from a node:
//
//	POST /v1/reports             — routed fan-out; the 200 body is the
//	                               cluster Ack (accepted/duplicates
//	                               plus per-node accounting); 429/503
//	                               surface when a node's share stayed
//	                               rejected through the router's
//	                               retries, 502 when a member refused
//	                               its share as misrouted (membership
//	                               drift — an operator problem)
//	GET  /v1/apps/{app}/verdict  — federated fused Verdict
//	                               (?channel=reports for the tally
//	                               channel alone)
//	GET  /v1/apps/{app}/timeline — federated Timeline
//	POST /v1/apps/{app}/fingerprint — routed to the app's owning node
//	GET  /v1/apps/{app}/fingerprint — fetched from the owning node
//	GET  /v1/apps/{app}/similar  — federated near-duplicate query
//	                               (probe + document-frequency rounds
//	                               across all members)
//	GET  /v1/node                — the cluster described as one
//	                               logical full-range node
//	GET  /healthz                — aggregate health with per-node rows
//	GET  /metrics, /metrics.json — the router's registry
//
// An incoming obs.TraceHeader is propagated through the fan-out hop
// to the owning nodes, and the router answers with its own
// obs.ServerTimingHeader — receive → all-nodes-acked microseconds —
// so a traced report's latency breakdown gains the router leg.
func NewHandler(r *Router) http.Handler {
	mux := http.NewServeMux()
	reqs := r.Obs().Counter("cluster_http_requests_total")

	mux.HandleFunc("POST /v1/reports", func(w http.ResponseWriter, req *http.Request) {
		reqs.Inc()
		recv := time.Now()
		traceID := ""
		if h := req.Header.Get(obs.TraceHeader); h != "" {
			if _, err := obs.ParseTraceID(h); err == nil {
				traceID = h
			}
		}
		evs, ok := market.ReadReports(w, req, maxRouterEvents)
		if !ok {
			return
		}
		ack, err := r.PostTracedCtx(req.Context(), evs, traceID)
		if err != nil {
			switch {
			case errors.Is(err, market.ErrNotOwner):
				// A member rejected its share: the routing table and the
				// node's pinned range disagree. Retrying through this
				// router cannot help until an operator fixes membership.
				http.Error(w, err.Error(), http.StatusBadGateway)
			case errors.Is(err, market.ErrBackpressure):
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			case errors.Is(err, market.ErrDegraded):
				w.Header().Set("Retry-After", "2")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.Is(err, market.ErrBatchTooLarge), errors.Is(err, market.ErrEventTooLarge):
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			default:
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			return
		}
		if traceID != "" {
			w.Header().Set(obs.ServerTimingHeader, strconv.FormatInt(time.Since(recv).Microseconds(), 10))
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(ack)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/apps/{app}/verdict", func(w http.ResponseWriter, req *http.Request) {
		reqs.Inc()
		var v any
		var err error
		if req.URL.Query().Get("channel") == "reports" {
			v, err = r.reportsCtx(req.Context(), req.PathValue("app"))
		} else {
			v, err = r.VerdictCtx(req.Context(), req.PathValue("app"))
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(v)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("POST /v1/apps/{app}/fingerprint", func(w http.ResponseWriter, req *http.Request) {
		reqs.Inc()
		var fp market.Fingerprint
		body := http.MaxBytesReader(w, req.Body, maxRouterEvents)
		if err := json.NewDecoder(body).Decode(&fp); err != nil {
			http.Error(w, "bad fingerprint body: "+err.Error(), http.StatusBadRequest)
			return
		}
		fp.App = req.PathValue("app")
		ack, err := r.PutFingerprintCtx(req.Context(), fp)
		if err != nil {
			switch {
			case errors.Is(err, market.ErrBackpressure):
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			case errors.Is(err, market.ErrDegraded):
				w.Header().Set("Retry-After", "2")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.Is(err, market.ErrFingerprintTooLarge):
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			default:
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(ack)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/apps/{app}/fingerprint", func(w http.ResponseWriter, req *http.Request) {
		reqs.Inc()
		fp, err := r.FingerprintCtx(req.Context(), req.PathValue("app"))
		if err != nil {
			if errors.Is(err, market.ErrNoFingerprint) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(fp)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/apps/{app}/similar", func(w http.ResponseWriter, req *http.Request) {
		reqs.Inc()
		sim, err := r.SimilarCtx(req.Context(), req.PathValue("app"))
		if err != nil {
			if errors.Is(err, market.ErrNoFingerprint) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(sim)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/apps/{app}/timeline", func(w http.ResponseWriter, req *http.Request) {
		reqs.Inc()
		tl, err := r.TimelineCtx(req.Context(), req.PathValue("app"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(tl)
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /v1/node", func(w http.ResponseWriter, _ *http.Request) {
		reqs.Inc()
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(r.Desc())
		w.Write(append(b, '\n'))
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		reqs.Inc()
		ok, nodes := r.HealthCtx(req.Context())
		status := "ok"
		code := http.StatusOK
		if !ok {
			status = "degraded"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		b, _ := json.Marshal(struct {
			Status string       `json:"status"`
			Nodes  []NodeHealth `json:"nodes"`
		}{status, nodes})
		w.Write(append(b, '\n'))
	})
	obs.RegisterMetricsHandlers(mux, r.Obs())
	return mux
}
