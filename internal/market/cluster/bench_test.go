package cluster_test

import (
	"context"
	"fmt"
	"testing"

	"bombdroid/internal/market/cluster"
	"bombdroid/internal/report"
)

// benchBatch builds one fan-out batch with globally unique keys so
// dedup never kicks in and every event takes the full admission path.
func benchBatch(iter, size int, evs []report.Event) []report.Event {
	evs = evs[:0]
	for j := 0; j < size; j++ {
		i := iter*size + j
		evs = append(evs, report.Event{
			App:    fmt.Sprintf("app-%d", i%16),
			Bomb:   fmt.Sprintf("bomb-%d", i%997),
			User:   fmt.Sprintf("u-bench-%d", i),
			TimeMs: int64(i),
			Info:   "bench",
		})
	}
	return evs
}

// loadedRouter stands a 3-node cluster up with n admitted events.
func loadedRouter(b *testing.B, n int) *cluster.Router {
	b.Helper()
	nodes := threeNodes(b)
	rt := newRouter(b, nodes)
	evs := make([]report.Event, 0, 512)
	ctx := context.Background()
	for off, iter := 0, 0; off < n; off, iter = off+512, iter+1 {
		size := 512
		if off+size > n {
			size = n - off
		}
		evs = benchBatch(iter, size, evs)
		if _, err := rt.PostCtx(ctx, evs); err != nil {
			b.Fatalf("preload: %v", err)
		}
	}
	return rt
}

// BenchmarkClusterIngest measures routed ingest through a 3-node HTTP
// cluster: batch partitioning, concurrent fan-out, per-node acks.
// bench.sh reads the events/s metric into BENCH_PR9.json as
// cluster_events_per_sec and the router's fan-out histogram p99 as
// router_fanout_p99_ms.
func BenchmarkClusterIngest(b *testing.B) {
	nodes := threeNodes(b)
	rt := newRouter(b, nodes)
	const batch = 512
	evs := make([]report.Event, 0, batch)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs = benchBatch(i, batch, evs)
		if _, err := rt.PostCtx(ctx, evs); err != nil {
			b.Fatalf("PostCtx: %v", err)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N*batch)/s, "events/s")
	}
	snap := rt.Obs().Histogram("cluster_router_fanout_us", nil).Snapshot()
	b.ReportMetric(snap.Quantile(0.99)/1000.0, "p99fan_ms")
}

// BenchmarkFederatedVerdict measures one federated read: three
// concurrent node fetches plus the commutative sum.
func BenchmarkFederatedVerdict(b *testing.B) {
	rt := loadedRouter(b, 8192)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.VerdictCtx(ctx, "app-1"); err != nil {
			b.Fatalf("VerdictCtx: %v", err)
		}
	}
}

// BenchmarkFederatedTimeline measures the heavier federated read: raw
// per-shard parts from every node plus the k-way merge.
func BenchmarkFederatedTimeline(b *testing.B) {
	rt := loadedRouter(b, 8192)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.TimelineCtx(ctx, "app-1"); err != nil {
			b.Fatalf("TimelineCtx: %v", err)
		}
	}
}
