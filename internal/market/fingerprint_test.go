package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"bombdroid/internal/market/marketfs"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// fpDigests synthesizes n distinct digests under a name prefix.
func fpDigests(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-digest-%03d", prefix, i)
	}
	return out
}

func mustPut(t *testing.T, st *Store, app string, digests []string) FingerprintAck {
	t.Helper()
	ack, err := st.PutFingerprint(Fingerprint{App: app, Digests: digests})
	if err != nil {
		t.Fatalf("PutFingerprint(%s): %v", app, err)
	}
	return ack
}

func TestFingerprintPutGetSimilar(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2})
	defer st.Close()

	// Uploads canonicalize: duplicates and empties dropped, order fixed.
	ack := mustPut(t, st, "app.a", []string{"d2", "d1", "d2", ""})
	if ack.App != "app.a" || ack.Entries != 2 || !ack.Updated {
		t.Fatalf("first upload ack = %+v, want 2 entries, updated", ack)
	}
	fp, err := st.Fingerprint("app.a")
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if !digestsEqual(fp.Digests, []string{"d1", "d2"}) {
		t.Errorf("stored digests = %v, want canonical [d1 d2]", fp.Digests)
	}

	// An identical re-upload is a dedup hit: acked, nothing written.
	if ack := mustPut(t, st, "app.a", []string{"d1", "d2"}); ack.Updated {
		t.Errorf("identical re-upload ack = %+v, want Updated false", ack)
	}

	// Last write wins.
	if ack := mustPut(t, st, "app.a", []string{"d9"}); !ack.Updated || ack.Entries != 1 {
		t.Fatalf("replacement ack = %+v, want 1 entry, updated", ack)
	}
	if fp, _ := st.Fingerprint("app.a"); !digestsEqual(fp.Digests, []string{"d9"}) {
		t.Errorf("after replacement digests = %v, want [d9]", fp.Digests)
	}

	// Reads for an unknown app are ErrNoFingerprint.
	if _, err := st.Fingerprint("app.none"); !errors.Is(err, ErrNoFingerprint) {
		t.Errorf("Fingerprint(unknown) err = %v, want ErrNoFingerprint", err)
	}
	if _, err := st.Similar("app.none"); !errors.Is(err, ErrNoFingerprint) {
		t.Errorf("Similar(unknown) err = %v, want ErrNoFingerprint", err)
	}
}

func TestFingerprintLimits(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 1, MaxFingerprintEntries: 4})
	defer st.Close()

	if _, err := st.PutFingerprint(Fingerprint{Digests: []string{"d"}}); err == nil {
		t.Error("fingerprint without an app accepted")
	}
	if _, err := st.PutFingerprint(Fingerprint{App: "app.big", Digests: fpDigests("x", 5)}); !errors.Is(err, ErrFingerprintTooLarge) {
		t.Errorf("oversized upload err = %v, want ErrFingerprintTooLarge", err)
	}
	// The gate applies post-canonicalization: 8 raw entries that dedup
	// to 4 pass.
	raw := append(fpDigests("y", 4), fpDigests("y", 4)...)
	if _, err := st.PutFingerprint(Fingerprint{App: "app.dup", Digests: raw}); err != nil {
		t.Errorf("deduped-under-limit upload refused: %v", err)
	}
}

// TestSimilarIdenticalAndSelf: an identical digest set scores exactly
// 1.0, and the query app never appears among its own neighbors.
func TestSimilarIdenticalAndSelf(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2})
	defer st.Close()

	set := fpDigests("twin", 8)
	mustPut(t, st, "app.orig", set)
	mustPut(t, st, "app.copy", set)
	mustPut(t, st, "app.far", fpDigests("other", 8))

	sim, err := st.Similar("app.orig")
	if err != nil {
		t.Fatalf("Similar: %v", err)
	}
	if !sim.Known || sim.Tau != st.cfg.SimilarityTau {
		t.Errorf("Similar header = %+v", sim)
	}
	if len(sim.Neighbors) != 1 {
		t.Fatalf("neighbors = %+v, want exactly the twin (no self, no disjoint app)", sim.Neighbors)
	}
	n := sim.Neighbors[0]
	if n.App != "app.copy" || n.Score != 1.0 || n.Shared != 8 {
		t.Errorf("twin neighbor = %+v, want app.copy at exactly 1.0 sharing 8", n)
	}
}

// TestSimilarCommonEntryBelowTau: one digest shared by the whole
// corpus (a framework resource every app bundles) is IDF-downweighted
// so near-universal overlap alone stays under τ and never fuses.
func TestSimilarCommonEntryBelowTau(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Threshold: 1})
	defer st.Close()

	const common = "framework-classes-digest"
	for i := 0; i < 30; i++ {
		app := fmt.Sprintf("app-%02d", i)
		mustPut(t, st, app, append(fpDigests(app, 6), common))
	}
	// Flag app-00 through the reports channel, then check that sharing
	// only the common digest with it does not propagate the flag.
	if _, _, err := st.Ingest([]report.Event{ev("app-00", "b", "u")}); err != nil {
		t.Fatal(err)
	}

	sim, err := st.Similar("app-01")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sim.Neighbors {
		if n.Score >= st.cfg.SimilarityTau {
			t.Errorf("common-entry neighbor %s scores %.3f, want < τ=%.2f", n.App, n.Score, st.cfg.SimilarityTau)
		}
	}
	v := st.Verdict("app-01")
	if v.Flagged || v.Channels.Similarity.Flagged {
		t.Errorf("verdict = %+v, want unflagged despite common digest with a flagged app", v)
	}
}

// TestVerdictFusion: the fused verdict flags an app that is a ≥ τ
// near-duplicate of a reports-flagged app, names the neighbor, and
// leaves unrelated apps alone.
func TestVerdictFusion(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Threshold: 2})
	defer st.Close()

	set := fpDigests("victim", 10)
	mustPut(t, st, "app.victim", set)
	// The repackaged clone carries the same resources plus one addition.
	mustPut(t, st, "app.clone", append([]string{"injected-ad-lib"}, set...))
	mustPut(t, st, "app.other", fpDigests("unrelated", 10))

	// Nothing is flagged before reports arrive.
	if v := st.Verdict("app.clone"); v.Flagged {
		t.Fatalf("pre-report verdict = %+v, want unflagged", v)
	}

	// Two detonation reports flag the victim through the reports channel.
	if _, _, err := st.Ingest([]report.Event{
		ev("app.victim", "b1", "u1"), ev("app.victim", "b1", "u2"),
	}); err != nil {
		t.Fatal(err)
	}

	v := st.Verdict("app.victim")
	if !v.Flagged || !v.Channels.Reports.Flagged || v.Channels.Similarity.Flagged {
		t.Errorf("victim verdict = %+v, want reports-flagged only", v)
	}

	clone := st.Verdict("app.clone")
	if !clone.Flagged || clone.Channels.Reports.Flagged || !clone.Channels.Similarity.Flagged {
		t.Errorf("clone verdict = %+v, want similarity-flagged only", clone)
	}
	cs := clone.Channels.Similarity
	if cs.Neighbor != "app.victim" || cs.Score < st.cfg.SimilarityTau {
		t.Errorf("clone similarity channel = %+v, want app.victim at ≥ τ", cs)
	}

	if v := st.Verdict("app.other"); v.Flagged {
		t.Errorf("unrelated app flagged: %+v", v)
	}
	// An app with no fingerprint gets a zero similarity channel that
	// still reports the configured τ.
	bare := st.Verdict("app.nofp")
	if bare.Channels.Similarity != (SimilarityChannel{Tau: st.cfg.SimilarityTau}) {
		t.Errorf("no-fingerprint similarity channel = %+v", bare.Channels.Similarity)
	}
}

// TestVerdictJSONShape pins the fused verdict's wire shape — the one
// canonical schema every surface (store, cluster, loadgen,
// checktimeline) speaks. Changing it is an API break; update every
// consumer or don't.
func TestVerdictJSONShape(t *testing.T) {
	v := Verdict{
		App:     "app.pin",
		Flagged: true,
		Channels: VerdictChannels{
			Reports:    ReportsChannel{Detections: 4, Threshold: 3, Flagged: true},
			Similarity: SimilarityChannel{Neighbor: "app.kin", Score: 0.875, Tau: 0.6, Flagged: true},
		},
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"app":"app.pin","flagged":true,"channels":{` +
		`"reports":{"detections":4,"threshold":3,"flagged":true},` +
		`"similarity":{"neighbor":"app.kin","score":0.875,"tau":0.6,"flagged":true}}}`
	if string(b) != want {
		t.Errorf("verdict wire shape drifted:\n got %s\nwant %s", b, want)
	}

	// The zero similarity channel omits the neighbor, nothing else.
	b, _ = json.Marshal(SimilarityChannel{Tau: 0.6})
	if string(b) != `{"score":0,"tau":0.6,"flagged":false}` {
		t.Errorf("zero similarity channel = %s", b)
	}
}

// fpCorpus loads a mixed corpus — fingerprints with controlled
// overlap plus enough reports to flag one app — and returns the app
// names.
func fpCorpus(t *testing.T, st *Store) []string {
	t.Helper()
	base := fpDigests("base", 12)
	apps := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		app := fmt.Sprintf("app-%d", i)
		apps = append(apps, app)
		// app-0/app-1 near-identical; the rest diverge progressively.
		set := append([]string(nil), base[i:]...)
		set = append(set, fpDigests(app, i)...)
		mustPut(t, st, app, set)
	}
	var evs []report.Event
	for i := 0; i < 3; i++ {
		evs = append(evs, ev("app-0", fmt.Sprintf("b%d", i), "u1"))
	}
	if _, _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	return apps
}

// snapshotJSON renders every app's fused verdict and similar answer as
// one JSON blob for byte-for-byte comparison across restarts.
func snapshotJSON(t *testing.T, st *Store, apps []string) string {
	t.Helper()
	var out []byte
	for _, app := range apps {
		b, err := json.Marshal(st.Verdict(app))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
		sim, err := st.Similar(app)
		if err != nil {
			t.Fatal(err)
		}
		if b, err = json.Marshal(sim); err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	return string(out)
}

// TestFingerprintRestartReplayIdentical: fingerprints, the inverted
// index, and every fused verdict survive a clean restart byte-for-byte
// — both through the checkpoint fast path and a full WAL replay.
func TestFingerprintRestartReplayIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		ckpt int
	}{
		{"checkpoint", 4}, // tiny interval: restart restores snapshots
		{"full-replay", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Dir: t.TempDir(), Shards: 2, Threshold: 3, CheckpointEvery: tc.ckpt}
			st, _ := mustOpen(t, cfg)
			apps := fpCorpus(t, st)
			want := snapshotJSON(t, st, apps)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st2, _ := mustOpen(t, cfg)
			defer st2.Close()
			if got := snapshotJSON(t, st2, apps); got != want {
				t.Errorf("fingerprint state changed across restart:\n got %s\nwant %s", got, want)
			}
			// The dedup survives too: re-uploading the stored set writes
			// nothing.
			fp, err := st2.Fingerprint("app-3")
			if err != nil {
				t.Fatal(err)
			}
			if ack := mustPut(t, st2, "app-3", fp.Digests); ack.Updated {
				t.Errorf("re-upload after restart ack = %+v, want dedup hit", ack)
			}
		})
	}
}

// TestFingerprintCrashRecovery: a crash mid-upload loses nothing that
// was acked; after recovery and a full resend the state matches a
// store that never crashed.
func TestFingerprintCrashRecovery(t *testing.T) {
	// Reference: same corpus, no crash.
	ref, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Threshold: 3})
	defer ref.Close()
	apps := fpCorpus(t, ref)
	want := snapshotJSON(t, ref, apps)

	fa := marketfs.NewFault(nil, 1)
	cfg := Config{Dir: t.TempDir(), Shards: 2, Threshold: 3, FS: fa, Obs: obs.NewRegistry()}
	st, _ := mustOpen(t, cfg)

	// Load part of the corpus, then let the disk start failing.
	base := fpDigests("base", 12)
	for i := 0; i < 4; i++ {
		mustPut(t, st, fmt.Sprintf("app-%d", i), append(append([]string(nil), base[i:]...), fpDigests(fmt.Sprintf("app-%d", i), i)...))
	}
	fa.CrashAfter(3)
	for i := 4; i < 8; i++ {
		app := fmt.Sprintf("app-%d", i)
		// Errors are expected once the crash point hits.
		st.PutFingerprint(Fingerprint{App: app,
			Digests: append(append([]string(nil), base[i:]...), fpDigests(app, i)...)})
	}
	if !fa.Crashed() {
		fa.Crash()
	}
	st.Close()
	fa.Recover()

	cfg.Obs = obs.NewRegistry()
	st2, _ := mustOpen(t, cfg)
	defer st2.Close()
	// Resend the whole corpus: acked uploads dedup away, lost ones land.
	fpCorpus(t, st2)
	if got := snapshotJSON(t, st2, apps); got != want {
		t.Errorf("state after crash+resend differs from never-crashed reference:\n got %s\nwant %s", got, want)
	}
}
