package market

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"bombdroid/internal/report"
)

// Node abstraction: a Store is one *node* of a (possibly single-node)
// market cluster. The global key space is cut into Slots fixed
// partitions by the same FNV-1a hash the shards use, and every node
// owns a contiguous slot range [Lo, Hi). A standalone daemon owns the
// full range, which is the zero-config default — the single-process
// deployment is just the one-node cluster.
//
// Range ownership is part of the ingestion contract, not routing
// advice: a node *refuses* events whose key slot falls outside its
// range with ErrNotOwner (HTTP 421), permanently. Were it to accept
// them, the same key could be admitted on two nodes — the per-key
// dedup window lives on the owning node, so a misrouted retry would
// double-count, and a federated verdict would no longer match the
// single-node reference. The range is persisted in meta.json next to
// the shard count and pinned the same way: a restart whose flags
// disagree with the directory refuses to start rather than silently
// re-partitioning history (see checkMeta).
//
// The router tier that fans batches out across nodes lives in
// internal/market/cluster; it discovers each node's descriptor from
// GET /v1/node and uses the same Slot function, so router and node
// can never disagree about ownership.

// ErrNotOwner rejects an ingest whose key slot is outside the node's
// shard range. Permanent for this node (HTTP 421): the event must go
// to the owning node; retrying here can never succeed.
var ErrNotOwner = errors.New("market: key outside this node's shard range")

// DefaultSlots is the cluster key-space partition count used when
// Config.Slots is zero. All nodes of one cluster must agree on it —
// it is pinned in meta.json alongside the range.
const DefaultSlots = 256

// Slot maps an event key onto the cluster partition space: FNV-1a of
// the key, modulo slots. Router and node both use this exact function
// (it is the ownership contract), and it is deliberately independent
// of the node-internal key→shard mapping, so a node may change its
// shard count story without moving cluster ownership.
func Slot(key string, slots int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(slots))
}

// ShardRange is a half-open slot interval [Lo, Hi) a node owns. The
// zero value means "the full range" and is resolved against
// Config.Slots at Open.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// IsZero reports whether the range is the unset zero value.
func (r ShardRange) IsZero() bool { return r.Lo == 0 && r.Hi == 0 }

// Contains reports whether slot falls inside [Lo, Hi).
func (r ShardRange) Contains(slot int) bool { return slot >= r.Lo && slot < r.Hi }

// Len is the number of owned slots.
func (r ShardRange) Len() int { return r.Hi - r.Lo }

// String renders the range in the "lo:hi" flag syntax.
func (r ShardRange) String() string { return fmt.Sprintf("%d:%d", r.Lo, r.Hi) }

// ParseShardRange parses the "lo:hi" flag syntax (hi exclusive).
func ParseShardRange(s string) (ShardRange, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return ShardRange{}, fmt.Errorf("market: shard range %q not in lo:hi form", s)
	}
	l, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return ShardRange{}, fmt.Errorf("market: shard range %q: bad lo: %v", s, err)
	}
	h, err := strconv.Atoi(strings.TrimSpace(hi))
	if err != nil {
		return ShardRange{}, fmt.Errorf("market: shard range %q: bad hi: %v", s, err)
	}
	if l < 0 || h <= l {
		return ShardRange{}, fmt.Errorf("market: shard range %q: want 0 <= lo < hi", s)
	}
	return ShardRange{Lo: l, Hi: h}, nil
}

// NodeDesc is a node's self-description, served at GET /v1/node. The
// router reads it at startup to learn the membership geometry instead
// of trusting a config file to agree with N meta.json files; the
// federation-affecting knobs (Threshold, TimelineCap) ride along so
// the router can refuse a cluster whose nodes would merge
// inconsistently.
type NodeDesc struct {
	NodeID        string  `json:"node_id"`
	Slots         int     `json:"slots"`
	RangeLo       int     `json:"range_lo"`
	RangeHi       int     `json:"range_hi"`
	Shards        int     `json:"shards"`
	Threshold     int     `json:"threshold"`
	TimelineCap   int     `json:"timeline_cap"`
	SimilarityTau float64 `json:"similarity_tau"`
	SimilarityK   int     `json:"similarity_k"`
}

// Range returns the descriptor's shard range.
func (d NodeDesc) Range() ShardRange { return ShardRange{Lo: d.RangeLo, Hi: d.RangeHi} }

// NodeDesc reports this store's cluster-facing descriptor.
func (st *Store) NodeDesc() NodeDesc {
	return NodeDesc{
		NodeID:        st.cfg.NodeID,
		Slots:         st.cfg.Slots,
		RangeLo:       st.cfg.Range.Lo,
		RangeHi:       st.cfg.Range.Hi,
		Shards:        st.cfg.Shards,
		Threshold:     st.cfg.Threshold,
		TimelineCap:   st.cfg.TimelineCap,
		SimilarityTau: st.cfg.SimilarityTau,
		SimilarityK:   st.cfg.SimilarityK,
	}
}

// checkOwnership refuses events outside the node's range. Full-range
// nodes skip the per-event hash entirely, so the standalone hot path
// is unchanged. The check runs before any reservation: ownership is a
// routing contract violation, and admitting the in-range half of a
// misrouted batch would mask it.
func (st *Store) checkOwnership(evs []report.Event) error {
	if st.fullRange {
		return nil
	}
	for _, ev := range evs {
		if slot := Slot(ev.Key(), st.cfg.Slots); !st.cfg.Range.Contains(slot) {
			return fmt.Errorf("%w: key %q is slot %d, node %q owns %s",
				ErrNotOwner, ev.Key(), slot, st.cfg.NodeID, st.cfg.Range)
		}
	}
	return nil
}
