package market

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

func TestParseShardRange(t *testing.T) {
	r, err := ParseShardRange("0:86")
	if err != nil || r.Lo != 0 || r.Hi != 86 {
		t.Fatalf("ParseShardRange(0:86) = %v, %v", r, err)
	}
	if got := r.String(); got != "0:86" {
		t.Fatalf("String() = %q, want 0:86", got)
	}
	for _, bad := range []string{"", "7", "a:b", "4:", ":4", "-1:4", "4:4", "8:4"} {
		if _, err := ParseShardRange(bad); err == nil {
			t.Errorf("ParseShardRange(%q) accepted, want error", bad)
		}
	}
}

func TestShardRangeContains(t *testing.T) {
	r := ShardRange{Lo: 4, Hi: 8}
	for slot, want := range map[int]bool{3: false, 4: true, 7: true, 8: false} {
		if got := r.Contains(slot); got != want {
			t.Errorf("Contains(%d) = %v, want %v", slot, got, want)
		}
	}
	if r.Len() != 4 {
		t.Errorf("Len() = %d, want 4", r.Len())
	}
}

func TestSlotStableAndBounded(t *testing.T) {
	// The slot function is the cross-process ownership contract: pin a
	// few known values so an accidental hash change cannot slip by as
	// "all tests still pass on both sides".
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("app-%d\x1fbomb\x1fuser", i)
		s := Slot(key, 256)
		if s < 0 || s >= 256 {
			t.Fatalf("Slot(%q) = %d out of range", key, s)
		}
		if again := Slot(key, 256); again != s {
			t.Fatalf("Slot not deterministic: %d then %d", s, again)
		}
	}
	if got := Slot("a\x1fb\x1fc", 256); got != Slot("a\x1fb\x1fc", 256) {
		t.Fatal("unstable")
	}
}

// slotEvent fabricates an event whose key lands inside (in=true) or
// outside the range.
func slotEvent(t *testing.T, slots int, r ShardRange, in bool) report.Event {
	t.Helper()
	for i := 0; i < 100_000; i++ {
		e := ev("app-slot", fmt.Sprintf("b-%d", i), "u-1")
		if r.Contains(Slot(e.Key(), slots)) == in {
			return e
		}
	}
	t.Fatalf("no key found with in=%v for range %s of %d", in, r, slots)
	return report.Event{}
}

func TestIngestRejectsOutOfRange(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Dir: t.TempDir(), Shards: 2, NodeID: "n0", Slots: 8, Range: ShardRange{Lo: 0, Hi: 4}, Obs: reg}
	st, _ := mustOpen(t, cfg)
	defer st.Close()

	good := slotEvent(t, 8, ShardRange{Lo: 0, Hi: 4}, true)
	bad := slotEvent(t, 8, ShardRange{Lo: 0, Hi: 4}, false)

	if _, _, err := st.Ingest([]report.Event{good}); err != nil {
		t.Fatalf("in-range ingest: %v", err)
	}
	// A misrouted batch is refused whole — admitting the in-range half
	// would mask the routing bug and double-count on retry.
	_, _, err := st.Ingest([]report.Event{good, bad})
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("mixed batch err = %v, want ErrNotOwner", err)
	}
	if got := st.Verdict("app-slot").Channels.Reports.Detections; got != 1 {
		t.Fatalf("detections = %d, want 1 (mixed batch must not be partially admitted)", got)
	}
	if n := reg.Counter("market_misrouted_rejects_total").Value(); n != 1 {
		t.Fatalf("misroute counter = %d, want 1", n)
	}
}

func TestFullRangeNodeAcceptsEverything(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2})
	defer st.Close()
	writeEvents(t, st, "app-any", 500)
	d := st.NodeDesc()
	if d.Slots != DefaultSlots || d.RangeLo != 0 || d.RangeHi != DefaultSlots {
		t.Fatalf("default NodeDesc = %+v, want full range of %d", d, DefaultSlots)
	}
}

// TestMetaPinsShardRange: the satellite fix — a node restarted with a
// shard range that disagrees with its meta.json must refuse to start,
// exactly like a shard-count change.
func TestMetaPinsShardRange(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 2, NodeID: "n0", Slots: 8, Range: ShardRange{Lo: 0, Hi: 4}}
	st, _ := mustOpen(t, cfg)
	st.Close()

	widened := cfg
	widened.Range = ShardRange{Lo: 0, Hi: 8}
	if _, _, err := Open(widened); err == nil || !strings.Contains(err.Error(), "shard range") {
		t.Fatalf("range change accepted (err = %v), want refusal", err)
	}
	resliced := cfg
	resliced.Slots = 16
	resliced.Range = ShardRange{Lo: 0, Hi: 8}
	if _, _, err := Open(resliced); err == nil || !strings.Contains(err.Error(), "slots") {
		t.Fatalf("slots change accepted (err = %v), want refusal", err)
	}

	st2, _ := mustOpen(t, cfg) // identical flags still open fine
	st2.Close()
}

func TestMetaPinsNodeID(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 2, NodeID: "n0"}
	st, _ := mustOpen(t, cfg)
	st.Close()

	stolen := cfg
	stolen.NodeID = "n1"
	if _, _, err := Open(stolen); err == nil || !strings.Contains(err.Error(), "belongs to node") {
		t.Fatalf("node-id change accepted (err = %v), want refusal", err)
	}
}

func TestMetaLegacyUpgrade(t *testing.T) {
	dir := t.TempDir()
	// A pre-cluster data directory pinned only the shard count.
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{\"shards\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A full-range open matches what the legacy file promised: accepted,
	// and the file is upgraded to the current schema.
	st, _ := mustOpen(t, Config{Dir: dir, Shards: 2, NodeID: "n0"})
	writeEvents(t, st, "app-legacy", 10)
	st.Close()
	b, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"range_hi\"") || !strings.Contains(string(b), "\"node_id\":\"n0\"") {
		t.Fatalf("meta.json not upgraded: %s", b)
	}

	// But a legacy directory cannot be re-declared a partial node.
	sub := t.TempDir()
	if err := os.WriteFile(filepath.Join(sub, "meta.json"), []byte("{\"shards\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Config{Dir: sub, Shards: 2, Slots: 8, Range: ShardRange{Lo: 0, Hi: 4}}); err == nil {
		t.Fatal("legacy dir accepted a partial range, want refusal")
	}
}
