package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"bombdroid/internal/market/similarity"
)

// Fingerprints are the market's static detection channel (see
// internal/market/similarity): each upload carries the app's
// per-entry resource digests, the store keeps the latest set per app,
// and near-duplicate queries plus the fused verdict read the derived
// inverted index. Writes are durable exactly like report events —
// through the owning shard's queue, group commit, and WAL flush — so
// a 200 means the fingerprint survives a restart, and replay rebuilds
// the index identically.
//
// Unlike report events, which partition by the full event key, a
// fingerprint's cluster slot is Slot(app): one node owns every
// fingerprint write for an app, and the per-app last-write-wins order
// is serialized by that node's owning shard.

var (
	// ErrNoFingerprint is returned by fingerprint reads for an app that
	// never uploaded one (HTTP 404).
	ErrNoFingerprint = errors.New("market: no fingerprint for app")
	// ErrFingerprintTooLarge rejects an upload with more digests than
	// MaxFingerprintEntries (or one that would overflow a WAL record).
	// Permanent: retrying unchanged can never succeed (HTTP 413).
	ErrFingerprintTooLarge = errors.New("market: fingerprint too large")
)

// fpRecordTag is the first byte of a fingerprint WAL record. Event
// records are bare JSON objects and always start with '{', so one
// out-of-band byte disambiguates the two record kinds in a shared log.
const fpRecordTag = 0x01

// Fingerprint is one app's resource fingerprint: the canonical
// (sorted, deduped) set of per-entry SHA-256 digests from its apk
// manifest.
type Fingerprint struct {
	App     string   `json:"app"`
	Digests []string `json:"digests"`
}

// FingerprintAck answers a fingerprint upload. Updated is false when
// the uploaded set was byte-identical to the stored one (a dedup hit:
// nothing was written).
type FingerprintAck struct {
	App     string `json:"app"`
	Entries int    `json:"entries"`
	Updated bool   `json:"updated"`
}

// Similar answers a near-duplicate query: the app's top-K weighted-
// Jaccard neighbors in (score desc, app asc) order, plus the τ the
// fusion rule applies to them.
type Similar struct {
	App       string                `json:"app"`
	Known     bool                  `json:"known"`
	Tau       float64               `json:"tau"`
	Neighbors []similarity.Neighbor `json:"neighbors"`
}

// ProbeRequest asks a node for its local candidates sharing at least
// one digest with the query — the candidate-generation half of a
// federated similar-read (see cluster).
type ProbeRequest struct {
	Digests []string `json:"digests"`
	Exclude string   `json:"exclude,omitempty"`
}

// ProbeResponse carries a node's candidates (sorted by app) and its
// local fingerprint-corpus size, which the router sums across nodes.
type ProbeResponse struct {
	Apps       int64         `json:"apps"`
	Candidates []Fingerprint `json:"candidates"`
}

// DFRequest asks a node for its local document frequencies of a
// digest set — the weighting half of a federated similar-read.
type DFRequest struct {
	Digests []string `json:"digests"`
}

// DFResponse maps each requested digest to how many of the node's
// fingerprints contain it (zero-count digests are omitted).
type DFResponse struct {
	Apps int64            `json:"apps"`
	DF   map[string]int64 `json:"df"`
}

func encodeFingerprint(fp *Fingerprint) ([]byte, error) {
	b, err := json.Marshal(fp)
	if err != nil {
		return nil, err
	}
	return append([]byte{fpRecordTag}, b...), nil
}

func decodeFingerprint(p []byte) (Fingerprint, error) {
	var fp Fingerprint
	if err := json.Unmarshal(p[1:], &fp); err != nil {
		return Fingerprint{}, err
	}
	return fp, nil
}

// digestsEqual compares two canonical digest slices.
func digestsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PutFingerprint stores app's fingerprint (canonicalized, last write
// wins) through the owning shard's WAL. It returns after the record
// is flushed — or, for an upload identical to the stored set, after
// the worker confirms the dedup without writing. Ownership, closed,
// degraded, backpressure, and size gates mirror Ingest.
func (st *Store) PutFingerprint(fp Fingerprint) (FingerprintAck, error) {
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return FingerprintAck{}, ErrClosed
	}
	if fp.App == "" {
		st.mu.RUnlock()
		return FingerprintAck{}, fmt.Errorf("market: fingerprint without an app")
	}
	if !st.fullRange {
		if slot := Slot(fp.App, st.cfg.Slots); !st.cfg.Range.Contains(slot) {
			st.misroute.Inc()
			st.mu.RUnlock()
			return FingerprintAck{}, fmt.Errorf("%w: app %q is slot %d, node %q owns %s",
				ErrNotOwner, fp.App, slot, st.cfg.NodeID, st.cfg.Range)
		}
	}
	digests := similarity.Canonical(fp.Digests)
	if len(digests) > st.cfg.MaxFingerprintEntries {
		st.mu.RUnlock()
		return FingerprintAck{}, fmt.Errorf("%w: %d digests (max %d)",
			ErrFingerprintTooLarge, len(digests), st.cfg.MaxFingerprintEntries)
	}
	i := st.shardFor(fp.App)
	s := st.shards[i]
	if s.degraded.Load() {
		st.mu.RUnlock()
		return FingerprintAck{}, fmt.Errorf("%w: shard %d", ErrDegraded, i)
	}
	if s.depth.Add(1) > int64(st.cfg.QueueCap) {
		s.depth.Add(-1)
		st.rejects.Inc()
		st.mu.RUnlock()
		return FingerprintAck{}, ErrBackpressure
	}
	req := ingestReq{fp: &Fingerprint{App: fp.App, Digests: digests}, done: make(chan ingestRes, 1)}
	s.ch <- req
	st.mu.RUnlock()
	res := <-req.done
	if res.err != nil {
		return FingerprintAck{}, res.err
	}
	return FingerprintAck{App: fp.App, Entries: len(digests), Updated: res.accepted > 0}, nil
}

// Fingerprint reads app's stored canonical digest set. The slice is
// shared with the index — read only.
func (st *Store) Fingerprint(app string) (Fingerprint, error) {
	digests, ok := st.idx.Get(app)
	if !ok {
		return Fingerprint{}, fmt.Errorf("%w: %q", ErrNoFingerprint, app)
	}
	return Fingerprint{App: app, Digests: digests}, nil
}

// Similar answers app's top-K weighted-Jaccard neighbors: candidate
// generation through the inverted index (sub-quadratic), exact
// rescoring only on the candidates. ErrNoFingerprint when the app
// never uploaded one.
func (st *Store) Similar(app string) (Similar, error) {
	fp, ok := st.idx.Get(app)
	if !ok {
		return Similar{}, fmt.Errorf("%w: %q", ErrNoFingerprint, app)
	}
	cands := st.idx.Candidates(fp, app)
	ns := similarity.TopK(similarity.Rank(fp, cands, st.idx.DF, st.idx.Apps()), st.cfg.SimilarityK)
	return Similar{App: app, Known: true, Tau: st.cfg.SimilarityTau, Neighbors: ns}, nil
}

// Probe serves the federation candidate round: every local app
// sharing at least one digest with the query, with its fingerprint,
// sorted by app for a deterministic wire shape.
func (st *Store) Probe(req ProbeRequest) ProbeResponse {
	cands := st.idx.Candidates(similarity.Canonical(req.Digests), req.Exclude)
	out := ProbeResponse{Apps: st.idx.Apps()}
	for app, digests := range cands {
		out.Candidates = append(out.Candidates, Fingerprint{App: app, Digests: digests})
	}
	sort.Slice(out.Candidates, func(i, j int) bool {
		return out.Candidates[i].App < out.Candidates[j].App
	})
	return out
}

// DFQuery serves the federation weighting round: local document
// frequencies for the requested digests. Digests no local
// fingerprint contains are omitted.
func (st *Store) DFQuery(req DFRequest) DFResponse {
	out := DFResponse{Apps: st.idx.Apps(), DF: make(map[string]int64, len(req.Digests))}
	for _, d := range similarity.Canonical(req.Digests) {
		if n := st.idx.DF(d); n > 0 {
			out.DF[d] = n
		}
	}
	return out
}
