package similarity

import (
	"fmt"
	"reflect"
	"testing"
)

func TestCanonical(t *testing.T) {
	in := []string{"b", "", "a", "b", "c", "a"}
	got := Canonical(in)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Canonical = %v, want [a b c]", got)
	}
	// The input is not mutated.
	if !reflect.DeepEqual(in, []string{"b", "", "a", "b", "c", "a"}) {
		t.Fatalf("Canonical mutated its input: %v", in)
	}
	if got := Canonical(nil); len(got) != 0 {
		t.Fatalf("Canonical(nil) = %v, want empty", got)
	}
}

func TestWeight(t *testing.T) {
	if w := Weight(0, 10); w != 0 {
		t.Errorf("Weight(0, 10) = %d, want 0", w)
	}
	if w := Weight(5, 0); w != 0 {
		t.Errorf("Weight(5, 0) = %d, want 0", w)
	}
	// Rarer digests weigh more.
	if rare, common := Weight(1, 1000), Weight(900, 1000); rare <= common {
		t.Errorf("Weight(df=1) = %d not above Weight(df=900) = %d", rare, common)
	}
	// Deterministic.
	if Weight(7, 100) != Weight(7, 100) {
		t.Error("Weight not deterministic")
	}
}

// dfOf builds a df lookup over a static corpus.
func dfOf(corpus map[string][]string) func(string) int64 {
	counts := make(map[string]int64)
	for _, fp := range corpus {
		for _, d := range fp {
			counts[d]++
		}
	}
	return func(d string) int64 { return counts[d] }
}

func TestRankIdenticalSetsScoreOne(t *testing.T) {
	corpus := map[string][]string{
		"twin":  {"d1", "d2", "d3"},
		"other": {"d9"},
	}
	ns := Rank([]string{"d1", "d2", "d3"}, corpus, dfOf(corpus), 2)
	if len(ns) != 1 || ns[0].App != "twin" {
		t.Fatalf("Rank = %+v, want only twin (zero-overlap candidates dropped)", ns)
	}
	if ns[0].Score != 1.0 || ns[0].Shared != 3 {
		t.Fatalf("identical sets scored %+v, want exactly 1.0 with 3 shared", ns[0])
	}
}

func TestRankCommonEntryStaysLow(t *testing.T) {
	// One shared boilerplate digest present in every app must not push
	// an otherwise-unrelated pair anywhere near a plausible τ.
	corpus := make(map[string][]string)
	for i := 0; i < 50; i++ {
		corpus[fmt.Sprintf("app-%d", i)] = Canonical([]string{
			"boiler", fmt.Sprintf("u%d-1", i), fmt.Sprintf("u%d-2", i), fmt.Sprintf("u%d-3", i),
		})
	}
	query := corpus["app-0"]
	cands := make(map[string][]string)
	cands["app-1"] = corpus["app-1"]
	ns := Rank(query, cands, dfOf(corpus), 50)
	if len(ns) != 1 {
		t.Fatalf("Rank = %+v, want one candidate", ns)
	}
	if ns[0].Score >= 0.3 {
		t.Fatalf("single shared common entry scored %g, want well below τ", ns[0].Score)
	}
}

func TestRankOrderDeterministic(t *testing.T) {
	corpus := map[string][]string{
		"b-app": {"d1", "d2"},
		"a-app": {"d1", "d2"}, // identical score → app-name tiebreak
		"c-app": {"d1"},
	}
	df := dfOf(corpus)
	ns := Rank([]string{"d1", "d2"}, corpus, df, 3)
	if len(ns) != 3 || ns[0].App != "a-app" || ns[1].App != "b-app" || ns[2].App != "c-app" {
		t.Fatalf("Rank order = %+v, want a-app, b-app, c-app", ns)
	}
	for i := 0; i < 5; i++ {
		again := Rank([]string{"d1", "d2"}, corpus, df, 3)
		if !reflect.DeepEqual(again, ns) {
			t.Fatalf("Rank not deterministic: %+v vs %+v", again, ns)
		}
	}
}

func TestRankEmptyQuery(t *testing.T) {
	corpus := map[string][]string{"x": {"d1"}}
	if ns := Rank(nil, corpus, dfOf(corpus), 1); len(ns) != 0 {
		t.Fatalf("empty query ranked %+v, want nothing", ns)
	}
}

func TestTopK(t *testing.T) {
	if got := TopK(nil, 5); got != nil {
		t.Fatalf("TopK(nil) = %v, want nil", got)
	}
	if got := TopK([]Neighbor{}, 5); got != nil {
		t.Fatalf("TopK(empty) = %v, want nil (one JSON shape for both)", got)
	}
	ns := []Neighbor{{App: "a"}, {App: "b"}, {App: "c"}}
	if got := TopK(ns, 2); len(got) != 2 || got[1].App != "b" {
		t.Fatalf("TopK(3, 2) = %v", got)
	}
	if got := TopK(ns, 0); len(got) != 3 {
		t.Fatalf("TopK k=0 truncated: %v", got)
	}
}

func TestIndexSetGetDelete(t *testing.T) {
	ix := NewIndex()
	ix.Set("a", []string{"d1", "d2"})
	ix.Set("b", []string{"d2", "d3"})
	if fp, ok := ix.Get("a"); !ok || len(fp) != 2 {
		t.Fatalf("Get(a) = %v, %v", fp, ok)
	}
	if ix.Apps() != 2 || ix.DF("d2") != 2 || ix.DF("d1") != 1 || ix.DF("nope") != 0 {
		t.Fatalf("counts: apps=%d df(d2)=%d df(d1)=%d", ix.Apps(), ix.DF("d2"), ix.DF("d1"))
	}

	// Replacement removes stale postings.
	ix.Set("a", []string{"d3"})
	if ix.DF("d1") != 0 || ix.DF("d3") != 2 {
		t.Fatalf("after replace: df(d1)=%d df(d3)=%d, want 0, 2", ix.DF("d1"), ix.DF("d3"))
	}

	ix.Delete("a")
	if _, ok := ix.Get("a"); ok || ix.Apps() != 1 || ix.DF("d3") != 1 {
		t.Fatalf("after delete: apps=%d df(d3)=%d", ix.Apps(), ix.DF("d3"))
	}
}

func TestIndexCandidatesExcludesSelf(t *testing.T) {
	ix := NewIndex()
	ix.Set("self", []string{"d1", "d2"})
	ix.Set("peer", []string{"d2"})
	ix.Set("stranger", []string{"d9"})
	q, _ := ix.Get("self")
	cands := ix.Candidates(q, "self")
	if _, ok := cands["self"]; ok {
		t.Fatal("self not excluded from its own candidates")
	}
	if _, ok := cands["peer"]; !ok || len(cands) != 1 {
		t.Fatalf("candidates = %v, want exactly peer", cands)
	}
}

// TestIndexCandidatesSubQuadratic pins the inverted-index contract:
// the work per query is bounded by posting-list sizes, not corpus
// size. With disjoint fingerprints plus one small shared cluster, a
// query rescans only its cluster no matter how many apps exist.
func TestIndexCandidatesSubQuadratic(t *testing.T) {
	ix := NewIndex()
	const n, cluster = 2000, 8
	for i := 0; i < n; i++ {
		fp := []string{fmt.Sprintf("solo-%d-a", i), fmt.Sprintf("solo-%d-b", i)}
		if i < cluster {
			fp = append(fp, "shared-cluster-digest")
		}
		ix.Set(fmt.Sprintf("app-%d", i), Canonical(fp))
	}
	q, _ := ix.Get("app-0")
	before, _ := ix.Stats()
	cands := ix.Candidates(q, "app-0")
	scanned, rescored := ix.Stats()
	if len(cands) != cluster-1 {
		t.Fatalf("candidates = %d, want %d cluster peers", len(cands), cluster-1)
	}
	if walked := scanned - before; walked > int64(3*cluster) {
		t.Fatalf("scanned %d posting entries for a %d-app corpus, want O(cluster)=~%d", walked, n, cluster)
	}
	if rescored >= int64(n/10) {
		t.Fatalf("rescored %d candidates, want far below corpus size %d", rescored, n)
	}
}
