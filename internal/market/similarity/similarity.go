// Package similarity is the market's second detection channel: an
// FSquaDRA2-style resource-fingerprint registry with a near-duplicate
// inverted index. An app's fingerprint is the set of per-entry SHA-256
// digests from its apk manifest; two apps sharing most resource
// digests are near-certain repackaging pairs even before a single
// logic bomb detonates.
//
// The index answers top-K weighted-Jaccard queries without O(n²)
// pairwise scans: candidate generation walks only the posting lists of
// the query's digests (apps sharing at least one entry), and exact
// rescoring runs only on those candidates. Per-digest IDF-style
// weights keep common boilerplate entries (launcher icons, license
// files) from dominating the score.
//
// Everything here is deterministic and integer-exact up to a single
// final float division, so a federated query that sums per-node
// document frequencies reproduces a single-node query byte for byte.
package similarity

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// WeightScale is the fixed-point scale for IDF weights. Weights are
// integers so intersection/union sums are order-independent; only the
// final score computes a float, from two identical int64s on every
// path.
const WeightScale = 1 << 16

// Weight is the fixed-point IDF-style weight of a digest appearing in
// df of apps fingerprints: log1p(apps/df) · WeightScale. Rare entries
// weigh heavily, ubiquitous ones approach log1p(1) and stop deciding
// scores on their own. Zero when df or apps is non-positive.
func Weight(df, apps int64) int64 {
	if df <= 0 || apps <= 0 {
		return 0
	}
	return int64(math.Log1p(float64(apps)/float64(df)) * WeightScale)
}

// Canonical sorts, dedups, and strips empties from a digest list —
// the one normal form every fingerprint takes before it is stored,
// hashed, ranked, or shipped between nodes. The input is not mutated.
func Canonical(digests []string) []string {
	out := make([]string, 0, len(digests))
	for _, d := range digests {
		if d != "" {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	n := 0
	for i, d := range out {
		if i == 0 || d != out[n-1] {
			out[n] = d
			n++
		}
	}
	return out[:n]
}

// Neighbor is one ranked near-duplicate: the candidate app, its
// weighted-Jaccard score against the query, and how many digests the
// two fingerprints share.
type Neighbor struct {
	App    string  `json:"app"`
	Score  float64 `json:"score"`
	Shared int     `json:"shared"`
}

// Rank scores every candidate fingerprint against the query by
// weighted Jaccard — Σ weight(shared) / Σ weight(union) — and returns
// the neighbors sorted by (score desc, app asc). Both fingerprints
// must be canonical (sorted, deduped). df reports a digest's document
// frequency and apps the corpus size; identical digest sets score
// exactly 1.0 regardless of weights.
func Rank(query []string, cands map[string][]string, df func(string) int64, apps int64) []Neighbor {
	out := make([]Neighbor, 0, len(cands))
	for app, fp := range cands {
		var wInter, wUnion int64
		shared := 0
		i, j := 0, 0
		for i < len(query) && j < len(fp) {
			switch {
			case query[i] == fp[j]:
				w := Weight(df(query[i]), apps)
				wInter += w
				wUnion += w
				shared++
				i++
				j++
			case query[i] < fp[j]:
				wUnion += Weight(df(query[i]), apps)
				i++
			default:
				wUnion += Weight(df(fp[j]), apps)
				j++
			}
		}
		for ; i < len(query); i++ {
			wUnion += Weight(df(query[i]), apps)
		}
		for ; j < len(fp); j++ {
			wUnion += Weight(df(fp[j]), apps)
		}
		if wUnion <= 0 || wInter <= 0 {
			continue
		}
		out = append(out, Neighbor{App: app, Score: float64(wInter) / float64(wUnion), Shared: shared})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].App < out[b].App
	})
	return out
}

// TopK truncates a ranked neighbor list to its best k entries,
// returning nil for an empty result so every serving path marshals
// the same JSON ("neighbors":null) whether it ranked zero candidates
// or never had any.
func TopK(ns []Neighbor, k int) []Neighbor {
	if len(ns) == 0 {
		return nil
	}
	if k > 0 && len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

// Index is the in-memory fingerprint registry: per-app canonical
// digest sets plus the inverted posting lists (digest → owning apps)
// that make candidate generation sub-quadratic. State is a pure
// function of the latest fingerprint per app, so WAL replay in any
// order that preserves per-app write order rebuilds it identically.
type Index struct {
	mu       sync.RWMutex
	fps      map[string][]string
	postings map[string]map[string]struct{}

	scanned  atomic.Int64 // posting-list entries walked by Candidates
	rescored atomic.Int64 // candidates handed to exact rescoring
}

// NewIndex returns an empty registry.
func NewIndex() *Index {
	return &Index{
		fps:      make(map[string][]string),
		postings: make(map[string]map[string]struct{}),
	}
}

// Set installs app's canonical digest set, replacing any previous
// fingerprint (last write wins). The slice is retained; callers must
// not mutate it afterwards.
func (ix *Index) Set(app string, digests []string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(app)
	ix.fps[app] = digests
	for _, d := range digests {
		apps := ix.postings[d]
		if apps == nil {
			apps = make(map[string]struct{})
			ix.postings[d] = apps
		}
		apps[app] = struct{}{}
	}
}

// Delete removes app's fingerprint and its postings entirely.
func (ix *Index) Delete(app string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(app)
	delete(ix.fps, app)
}

func (ix *Index) removeLocked(app string) {
	for _, d := range ix.fps[app] {
		apps := ix.postings[d]
		delete(apps, app)
		if len(apps) == 0 {
			delete(ix.postings, d)
		}
	}
}

// Get returns app's stored fingerprint. The slice is shared — read
// only.
func (ix *Index) Get(app string) ([]string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fp, ok := ix.fps[app]
	return fp, ok
}

// Apps is the corpus size: how many apps have a fingerprint.
func (ix *Index) Apps() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int64(len(ix.fps))
}

// DF is a digest's document frequency: how many fingerprints contain
// it.
func (ix *Index) DF(digest string) int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int64(len(ix.postings[digest]))
}

// Candidates walks the posting lists of the query digests and returns
// every app (except exclude) sharing at least one digest, mapped to
// its stored fingerprint. This is the sub-quadratic gate: cost is the
// total posting length of the query's digests, not the corpus size.
// The returned slices are shared — read only.
func (ix *Index) Candidates(query []string, exclude string) map[string][]string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[string][]string)
	var scanned int64
	for _, d := range query {
		for app := range ix.postings[d] {
			scanned++
			if app == exclude {
				continue
			}
			if _, ok := out[app]; !ok {
				out[app] = ix.fps[app]
			}
		}
	}
	ix.scanned.Add(scanned)
	ix.rescored.Add(int64(len(out)))
	return out
}

// Stats reports the cumulative work counters behind the sub-quadratic
// claim: posting entries scanned and candidates exactly rescored.
func (ix *Index) Stats() (scanned, rescored int64) {
	return ix.scanned.Load(), ix.rescored.Load()
}
