// Package market is the market-operator half of the paper's
// decentralized repackaging-detection loop: the app store that the
// devices' detonation reports flow back to. The device side
// (internal/report, internal/sim) retries through outages and
// dedups per device; this side must hold up at market scale — many
// apps, many devices, bursty traffic — without ever losing a report
// it acknowledged.
//
// The design is a sharded, WAL-backed ingestion store:
//
//   - incoming events are partitioned across Shards by Event.Key(),
//     so one hot app cannot stall the others;
//   - each shard admits events through a dedup window, appends the
//     novel ones to an append-only checksummed WAL (group commit, one
//     flush per batch), and only then acks — a 200 from the daemon
//     means the report is on disk;
//   - each shard periodically commits a checkpoint snapshot (dedup
//     window + tallies + WAL position) with an atomic temp/fsync/
//     rename protocol, so Open restores the snapshot, replays only the
//     WAL tail, and compacts segments behind it — restart is
//     O(checkpoint + tail), not O(total history);
//   - admission is gated by a per-shard queue bound: when a shard is
//     saturated the store refuses with ErrBackpressure (HTTP 429)
//     instead of dropping, pushing the retry into the device-side
//     pipeline where it already has backoff and a breaker; requests
//     that could never be admitted — a batch bigger than a shard's
//     queue, an event bigger than a WAL record — are refused
//     permanently instead (ErrBatchTooLarge / ErrEventTooLarge,
//     HTTP 413), so clients split rather than retry forever;
//   - a shard whose disk stops cooperating (failed WAL append,
//     repeated checkpoint failures) degrades to read-only instead of
//     crashing the daemon: its ingests fail fast with ErrDegraded
//     (HTTP 503 + Retry-After), verdicts still serve, the other
//     shards carry on, and Health/healthz report the split;
//   - all disk access goes through marketfs.FS, so the crash-recovery
//     torture tests run these exact code paths against a fault-
//     injecting in-memory filesystem.
package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"sync"
	"time"

	"bombdroid/internal/market/marketfs"
	"bombdroid/internal/market/similarity"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

var (
	// ErrBackpressure rejects an ingest when a target shard's queue is
	// full. The request is safe to retry after a beat.
	ErrBackpressure = errors.New("market: shard queue full")
	// ErrBatchTooLarge rejects a batch that maps more events to one
	// shard than its QueueCap — it could never be admitted, so unlike
	// ErrBackpressure a retry of the same batch is pointless: the
	// caller must split it (HTTP 413, not 429).
	ErrBatchTooLarge = errors.New("market: batch exceeds shard queue capacity")
	// ErrEventTooLarge rejects an event whose JSON encoding exceeds
	// MaxEventBytes. Permanent for that event: retrying unchanged can
	// never succeed (HTTP 413).
	ErrEventTooLarge = errors.New("market: event too large")
	// ErrDegraded rejects ingests that target a shard in read-only
	// degraded mode (persistent disk failure). Retryable in principle
	// (HTTP 503 + Retry-After) — the operator may replace the disk and
	// restart — but not clearing on its own.
	ErrDegraded = errors.New("market: shard degraded, ingestion suspended")
	// ErrClosed rejects operations on a closed store.
	ErrClosed = errors.New("market: store closed")
)

// MaxEventBytes bounds one event's JSON encoding. WAL replay treats a
// record length beyond this as a torn tail or corruption, so an
// oversized event must be refused at ingestion — were it written and
// acked, the next restart would truncate it (losing acked records) or
// refuse to open. Client-supplied fields (Info above all) are
// unbounded on the wire, hence the explicit gate.
const MaxEventBytes = maxWALRecord

// Config tunes a Store. The zero value of every field except Dir
// resolves to a default; Dir is required.
type Config struct {
	// Dir is the data directory. Each shard keeps its WAL and
	// checkpoints in Dir/shard-NNN; Dir/meta.json pins the shard count.
	Dir string
	// Shards is the partition count (default 4). It is fixed at first
	// Open: reopening a directory with a different count is an error,
	// because the key→shard mapping would silently change.
	Shards int
	// QueueCap bounds each shard's enqueued-but-uncommitted events;
	// past it Ingest returns ErrBackpressure (default 4096).
	QueueCap int
	// DedupWindow is the per-generation key capacity of each shard's
	// dedup window; a key is remembered for between one and two
	// windows' worth of admissions (default 65536).
	DedupWindow int
	// SegmentBytes rotates a shard's WAL segment past this size
	// (default 64 MiB).
	SegmentBytes int64
	// Threshold is how many admitted detections mark an app
	// repackaged in Verdict (default 3) — the market-response knob:
	// one report could be a fluke, Threshold distinct detonations are
	// a takedown case.
	Threshold int
	// Fsync syncs the WAL on every batch commit. Off by default: the
	// ack guarantee is then "in the OS" (survives a process kill, not
	// a machine crash), which is the deployment's usual trade. The
	// checkpoint commit protocol always syncs, regardless.
	Fsync bool
	// MaxBatch bounds events per group commit (default 4096).
	MaxBatch int
	// CheckpointEvery snapshots a shard after this many WAL records
	// since the last snapshot (default 65536). Negative disables
	// checkpointing entirely, including the shutdown snapshot.
	CheckpointEvery int
	// CheckpointBytes snapshots a shard after this many WAL bytes
	// since the last snapshot, whichever of the two triggers first
	// (default SegmentBytes).
	CheckpointBytes int64
	// TimelineCap bounds each (shard, app) verdict-timeline history
	// (default 256). The earliest Threshold entries are never evicted
	// (so first-report and threshold-crossing stay exact); past the
	// cap, the oldest post-threshold entries are dropped and counted.
	// Must exceed Threshold.
	TimelineCap int
	// NodeID names this node within a cluster (default "": standalone).
	// Pinned in meta.json once set: a restart under a different name
	// refuses to start.
	NodeID string
	// Slots is the cluster key-space partition count (default
	// DefaultSlots). Every node of a cluster must agree on it; like
	// Shards it is fixed at first Open.
	Slots int
	// Range is the slot range [Lo, Hi) this node owns. The zero value
	// resolves to the full range — a standalone daemon is the one-node
	// cluster. Events whose key slot falls outside the range are
	// refused with ErrNotOwner (HTTP 421). Pinned in meta.json: see
	// checkMeta.
	Range ShardRange
	// SimilarityTau is the similarity channel's score threshold τ: an
	// app is similarity-flagged when a top-K neighbor scoring ≥ τ is
	// itself reports-flagged (default 0.6). Every node of a cluster
	// must agree on it, like Threshold.
	SimilarityTau float64
	// SimilarityK bounds how many neighbors GET /v1/apps/{app}/similar
	// returns — and how many the fusion rule considers (default 10).
	// Cluster-wide agreement required.
	SimilarityK int
	// MaxFingerprintEntries bounds one fingerprint's digest count;
	// larger uploads are refused permanently with
	// ErrFingerprintTooLarge (default 4096 — comfortably inside one
	// WAL record).
	MaxFingerprintEntries int
	// FS is the filesystem the store runs on (default the real OS).
	// Tests substitute marketfs.Fault to crash it mid-operation.
	FS marketfs.FS
	// Obs receives the store's metrics (default: a private registry).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4096
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 1 << 16
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4096
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1 << 16
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = c.SegmentBytes
	}
	if c.TimelineCap == 0 {
		c.TimelineCap = 256
	}
	if c.Slots == 0 {
		c.Slots = DefaultSlots
	}
	if c.SimilarityTau == 0 {
		c.SimilarityTau = 0.6
	}
	if c.SimilarityK == 0 {
		c.SimilarityK = 10
	}
	if c.MaxFingerprintEntries == 0 {
		c.MaxFingerprintEntries = 4096
	}
	if c.Range.IsZero() {
		c.Range = ShardRange{Lo: 0, Hi: c.Slots}
	}
	if c.FS == nil {
		c.FS = marketfs.OS{}
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	return c
}

// Validate applies the same defaulting Open does, then rejects
// configurations the store cannot run with. Exported so flag-driven
// callers (cmd/marketd) can fail fast with a message; because zero
// fields validate as their defaults, only explicitly out-of-range
// values (negative, Shards past 1024) fail.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Dir == "":
		return fmt.Errorf("market: Dir is required")
	case c.Shards < 1 || c.Shards > 1024:
		return fmt.Errorf("market: Shards %d outside [1,1024]", c.Shards)
	case c.QueueCap < 1:
		return fmt.Errorf("market: QueueCap %d < 1", c.QueueCap)
	case c.DedupWindow < 1:
		return fmt.Errorf("market: DedupWindow %d < 1", c.DedupWindow)
	case c.SegmentBytes < 1:
		return fmt.Errorf("market: SegmentBytes %d < 1", c.SegmentBytes)
	case c.Threshold < 1:
		return fmt.Errorf("market: Threshold %d < 1", c.Threshold)
	case c.MaxBatch < 1:
		return fmt.Errorf("market: MaxBatch %d < 1", c.MaxBatch)
	case c.CheckpointBytes < 1 && c.CheckpointEvery >= 0:
		return fmt.Errorf("market: CheckpointBytes %d < 1", c.CheckpointBytes)
	case c.TimelineCap <= c.Threshold:
		return fmt.Errorf("market: TimelineCap %d must exceed Threshold %d (head retention)",
			c.TimelineCap, c.Threshold)
	case c.Slots < 1 || c.Slots > 1<<16:
		return fmt.Errorf("market: Slots %d outside [1,65536]", c.Slots)
	case c.SimilarityTau <= 0 || c.SimilarityTau > 1:
		return fmt.Errorf("market: SimilarityTau %g outside (0,1]", c.SimilarityTau)
	case c.SimilarityK < 1:
		return fmt.Errorf("market: SimilarityK %d < 1", c.SimilarityK)
	case c.MaxFingerprintEntries < 1:
		return fmt.Errorf("market: MaxFingerprintEntries %d < 1", c.MaxFingerprintEntries)
	case c.Range.Lo < 0 || c.Range.Hi <= c.Range.Lo || c.Range.Hi > c.Slots:
		return fmt.Errorf("market: Range %s not within [0,%d)", c.Range, c.Slots)
	}
	return nil
}

// Store is the ingestion engine: Ingest partitions, dedups, logs, and
// acks; Verdict reads the per-app tallies the log implies.
type Store struct {
	cfg    Config
	shards []*shard
	// idx is the store-global fingerprint registry and near-duplicate
	// index (the similarity detection channel). Writes flow through the
	// owning shard's WAL first; the index itself is derived state,
	// rebuilt from checkpoints + replay on every open.
	idx *similarity.Index
	// fullRange caches Range == [0, Slots): the standalone case, where
	// admission skips the per-event ownership hash entirely.
	fullRange bool

	mu       sync.RWMutex // guards closed vs in-flight Ingest
	closed   bool
	rejects  *obs.Counter
	misroute *obs.Counter
}

// storeMeta is the on-disk pinning record. Shards has been pinned
// since the format's first version; Slots/NodeID/Range arrived with
// multi-node ownership. A legacy meta.json (Slots == 0 when decoded)
// is read as "a standalone full-range node" and upgraded in place.
type storeMeta struct {
	Shards  int    `json:"shards"`
	Slots   int    `json:"slots,omitempty"`
	NodeID  string `json:"node_id,omitempty"`
	RangeLo int    `json:"range_lo"`
	RangeHi int    `json:"range_hi,omitempty"`
}

// Open validates cfg, restores every shard under cfg.Dir (newest
// valid checkpoint + WAL tail, full replay as fallback), and starts
// the shard workers. The returned ReplayStats summarize the recovery
// (segments scanned, records restored, checkpoints used, torn tails
// truncated, segments compacted).
func Open(cfg Config) (*Store, ReplayStats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, ReplayStats{}, err
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, ReplayStats{}, err
	}
	if err := checkMeta(cfg); err != nil {
		return nil, ReplayStats{}, err
	}
	st := &Store{
		cfg:       cfg,
		idx:       similarity.NewIndex(),
		fullRange: cfg.Range.Lo == 0 && cfg.Range.Hi == cfg.Slots,
		rejects:   cfg.Obs.Counter("market_backpressure_rejects_total"),
		misroute:  cfg.Obs.Counter("market_misrouted_rejects_total"),
	}
	var stats ReplayStats
	for i := 0; i < cfg.Shards; i++ {
		s, ss, err := newShard(i, cfg, st.idx)
		if err != nil {
			for _, prev := range st.shards {
				prev.close()
			}
			return nil, ReplayStats{}, err
		}
		st.shards = append(st.shards, s)
		stats.add(ss)
	}
	return st, stats, nil
}

// checkMeta pins the on-disk identity across restarts: the shard
// count (the key→shard mapping is part of the on-disk format) and,
// since multi-node ownership, the slot count, node id, and owned
// range. Range ownership is pinned exactly like the shard count: a
// directory that was node n1 owning 0:86 cannot silently come back as
// 86:171 — the WAL holds keys the new range would disown, and a
// federated verdict would drift from the reference. A mismatch
// refuses to start; re-ranging is an explicit wipe-or-migrate
// operation, never a flag change.
//
// A legacy meta.json (written before ranges existed) pins only the
// shard count; it is accepted iff the config describes what that file
// implicitly promised — a full-range node — and upgraded to the
// current schema in place (atomic write, so a crash mid-upgrade
// leaves the old, still-valid file). A new NodeID may be adopted
// set-once onto a directory that never had one.
func checkMeta(cfg Config) error {
	path := cfg.Dir + "/meta.json"
	b, err := cfg.FS.ReadFile(path)
	switch {
	case err == nil:
		var m storeMeta
		if err := json.Unmarshal(b, &m); err != nil {
			return fmt.Errorf("market: corrupt %s: %w", path, err)
		}
		if m.Shards != cfg.Shards {
			return fmt.Errorf("market: %s was written with %d shards, reopened with %d",
				cfg.Dir, m.Shards, cfg.Shards)
		}
		if m.Slots == 0 {
			// Legacy file: implicitly a standalone full-range node.
			m.Slots = DefaultSlots
			m.RangeLo, m.RangeHi = 0, m.Slots
		}
		if m.Slots != cfg.Slots {
			return fmt.Errorf("market: %s was written with %d slots, reopened with %d",
				cfg.Dir, m.Slots, cfg.Slots)
		}
		if m.RangeLo != cfg.Range.Lo || m.RangeHi != cfg.Range.Hi {
			return fmt.Errorf("market: %s owns shard range %d:%d, reopened claiming %s",
				cfg.Dir, m.RangeLo, m.RangeHi, cfg.Range)
		}
		if m.NodeID != cfg.NodeID && m.NodeID != "" {
			return fmt.Errorf("market: %s belongs to node %q, reopened as %q",
				cfg.Dir, m.NodeID, cfg.NodeID)
		}
		if m.NodeID == cfg.NodeID && len(b) > 0 && jsonEqualsMeta(b, m) {
			return nil // schema current and identical; no rewrite
		}
		// Legacy schema, or set-once NodeID adoption: upgrade in place.
		m.NodeID = cfg.NodeID
		return writeMeta(cfg, m)
	case errors.Is(err, fs.ErrNotExist):
		return writeMeta(cfg, storeMeta{
			Shards:  cfg.Shards,
			Slots:   cfg.Slots,
			NodeID:  cfg.NodeID,
			RangeLo: cfg.Range.Lo,
			RangeHi: cfg.Range.Hi,
		})
	default:
		return err
	}
}

// jsonEqualsMeta reports whether raw already encodes exactly m under
// the current schema, so unchanged restarts skip the meta rewrite.
func jsonEqualsMeta(raw []byte, m storeMeta) bool {
	cur, _ := json.Marshal(m)
	return string(cur)+"\n" == string(raw)
}

func writeMeta(cfg Config, m storeMeta) error {
	b, _ := json.Marshal(m)
	return writeFileAtomic(cfg.FS, cfg.Dir, "meta.json", append(b, '\n'))
}

// writeFileAtomic commits dir/name through the same temp, fsync,
// rename, fsync-dir protocol the checkpoints use: after a crash the
// file either does not exist or holds the complete payload — never a
// torn prefix (which for meta.json would brick every later Open).
func writeFileAtomic(fsys marketfs.FS, dir, name string, data []byte) error {
	tmp := dir + "/" + name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, dir+"/"+name); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

func (st *Store) shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(st.shards)))
}

// Ingest admits a batch of events: partition by key, reserve queue
// room on every target shard, enqueue, and wait for the shard workers
// to commit. It returns how many events were newly admitted and how
// many were dedup hits.
//
// Admission is all-or-nothing at the reservation stage: if any target
// shard is saturated, nothing is enqueued and the whole batch fails
// with ErrBackpressure, so a client retry cannot half-apply (the
// dedup window would absorb it anyway, but the 429 path stays cheap).
// A batch that maps more than QueueCap events to a single shard could
// never reserve even against an idle queue; that is ErrBatchTooLarge
// — a permanent rejection the caller must resolve by splitting, not
// retrying. A batch carrying any event whose key slot is outside the
// node's shard range is refused whole with ErrNotOwner (it reached
// the wrong node; see node.go). A batch touching a degraded shard is
// refused up front with ErrDegraded. A WAL failure on any shard is returned as the
// batch's error; events on other shards that did commit stay
// committed and a retry of the full batch dedups them.
//
// The store lock is held only through enqueue — a shard worker stuck
// on a wedged disk delays this call's ack, but never blocks Close or
// CloseTimeout from proceeding.
func (st *Store) Ingest(evs []report.Event) (accepted, dups int, err error) {
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return 0, 0, ErrClosed
	}
	if len(evs) == 0 {
		st.mu.RUnlock()
		return 0, 0, nil
	}
	if err := st.checkOwnership(evs); err != nil {
		st.misroute.Inc()
		st.mu.RUnlock()
		return 0, 0, err
	}
	parts := make([][]report.Event, len(st.shards))
	for _, ev := range evs {
		i := st.shardFor(ev.Key())
		parts[i] = append(parts[i], ev)
	}
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		if len(p) > st.cfg.QueueCap {
			st.mu.RUnlock()
			return 0, 0, fmt.Errorf("%w: %d events map to shard %d (QueueCap %d)",
				ErrBatchTooLarge, len(p), i, st.cfg.QueueCap)
		}
		if st.shards[i].degraded.Load() {
			st.mu.RUnlock()
			return 0, 0, fmt.Errorf("%w: shard %d", ErrDegraded, i)
		}
	}
	var reserved []int
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		s := st.shards[i]
		if s.depth.Add(int64(len(p))) > int64(st.cfg.QueueCap) {
			s.depth.Add(-int64(len(p)))
			for _, j := range reserved {
				st.shards[j].depth.Add(-int64(len(parts[j])))
			}
			st.rejects.Inc()
			st.mu.RUnlock()
			return 0, 0, ErrBackpressure
		}
		reserved = append(reserved, i)
	}
	// The reservation guarantees queue room (channel capacity is
	// QueueCap requests and each request carries ≥1 reserved event), so
	// these sends cannot block; the lock can drop before the waits.
	dones := make([]chan ingestRes, 0, len(reserved))
	for _, i := range reserved {
		req := ingestReq{evs: parts[i], done: make(chan ingestRes, 1)}
		st.shards[i].ch <- req
		dones = append(dones, req.done)
	}
	st.mu.RUnlock()
	for _, done := range dones {
		res := <-done
		accepted += res.accepted
		dups += res.dups
		if res.err != nil && err == nil {
			err = res.err
		}
	}
	if err != nil {
		return 0, 0, err
	}
	return accepted, dups, nil
}

// Verdict is one app's standing with the market: the fused result of
// every detection channel, plus the per-channel breakdown. Flagged is
// the OR across channels. The struct is comparable (no slices or
// maps), so determinism tests compare verdicts with ==.
type Verdict struct {
	App     string          `json:"app"`
	Flagged bool            `json:"flagged"`
	Channels VerdictChannels `json:"channels"`
}

// VerdictChannels is the per-channel breakdown of a fused verdict.
type VerdictChannels struct {
	Reports    ReportsChannel    `json:"reports"`
	Similarity SimilarityChannel `json:"similarity"`
}

// ReportsChannel is the dynamic channel: bomb-report detonation
// tallies versus the configured threshold.
type ReportsChannel struct {
	Detections int64 `json:"detections"`
	Threshold  int   `json:"threshold"`
	Flagged    bool  `json:"flagged"`
}

// SimilarityChannel is the static channel: the app is flagged when a
// top-K resource-fingerprint neighbor scoring ≥ τ is itself flagged by
// the reports channel. Neighbor/Score name the first such neighbor in
// (score desc, app asc) order; with no fingerprint or no qualifying
// neighbor, Neighbor is empty and Score 0.
type SimilarityChannel struct {
	Neighbor string  `json:"neighbor,omitempty"`
	Score    float64 `json:"score"`
	Tau      float64 `json:"tau"`
	Flagged  bool    `json:"flagged"`
}

// Verdict fuses the channels for one app: reports (admitted
// detections across shards vs. threshold) OR similarity (a ≥ τ
// near-duplicate that is itself reports-flagged). Degraded shards
// still serve their (frozen) tallies.
func (st *Store) Verdict(app string) Verdict {
	reports := st.reportsChannel(app)
	sim := st.similarityChannel(app)
	return Verdict{
		App:     app,
		Flagged: reports.Flagged || sim.Flagged,
		Channels: VerdictChannels{
			Reports:    reports,
			Similarity: sim,
		},
	}
}

// reportsChannel sums the app's admitted detections across shards and
// compares against the configured threshold.
func (st *Store) reportsChannel(app string) ReportsChannel {
	var n int64
	for _, s := range st.shards {
		n += s.appCount(app)
	}
	return ReportsChannel{
		Detections: n,
		Threshold:  st.cfg.Threshold,
		Flagged:    n >= int64(st.cfg.Threshold),
	}
}

// similarityChannel walks the app's top-K neighbors (the same list
// Similar serves) and flags on the first one scoring ≥ τ whose
// reports-channel tally crosses the threshold. Only the reports
// channel of the neighbor counts — flag propagation through
// similarity itself would recurse.
func (st *Store) similarityChannel(app string) SimilarityChannel {
	out := SimilarityChannel{Tau: st.cfg.SimilarityTau}
	fp, ok := st.idx.Get(app)
	if !ok || len(fp) == 0 {
		return out
	}
	cands := st.idx.Candidates(fp, app)
	ranked := similarity.TopK(similarity.Rank(fp, cands, st.idx.DF, st.idx.Apps()), st.cfg.SimilarityK)
	for _, n := range ranked {
		if n.Score < st.cfg.SimilarityTau {
			break // sorted by score desc: nothing below τ qualifies
		}
		if st.reportsChannel(n.App).Flagged {
			out.Neighbor, out.Score, out.Flagged = n.App, n.Score, true
			break
		}
	}
	return out
}

// Health reports how many shards are ingesting normally and how many
// are in read-only degraded mode.
func (st *Store) Health() (ok, degraded int) {
	for _, s := range st.shards {
		if s.degraded.Load() {
			degraded++
		} else {
			ok++
		}
	}
	return ok, degraded
}

// Shards reports the store's partition count.
func (st *Store) Shards() int { return len(st.shards) }

// Obs exposes the store's metrics registry (the configured one, or
// the private default).
func (st *Store) Obs() *obs.Registry { return st.cfg.Obs }

// Threshold reports the configured detection threshold.
func (st *Store) Threshold() int { return st.cfg.Threshold }

// Close drains the shard queues, takes shutdown checkpoints, seals
// every WAL, and rejects further ingests. Safe to call once;
// concurrent Ingests finish first. It waits indefinitely — a bounded
// drain is CloseTimeout.
func (st *Store) Close() error {
	_, err := st.CloseTimeout(0)
	return err
}

// CloseTimeout is Close with a drain deadline (0 = wait forever).
// Shards are drained and sealed concurrently; shards that miss the
// deadline are returned by index, along with an error. The store is
// marked closed either way — a wedged shard's worker may still be
// blocked on its disk afterward, but no new work can reach it.
func (st *Store) CloseTimeout(d time.Duration) (missed []int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, nil
	}
	st.closed = true

	errs := make([]error, len(st.shards))
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i, s := range st.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			errs[i] = s.close()
		}(i, s)
	}
	go func() { wg.Wait(); close(done) }()

	var deadline <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-done:
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		return nil, nil
	case <-deadline:
		for i, s := range st.shards {
			if !s.sealed.Load() {
				missed = append(missed, i)
			}
		}
		return missed, fmt.Errorf("market: %d shard(s) missed the %v close deadline", len(missed), d)
	}
}
