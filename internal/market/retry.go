package market

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy is the one retry story for everything that posts into a
// market node: the 429/503 loops that used to be hand-rolled in
// cmd/loadgen's fire-hose workers, market.Client callers, and now the
// cluster router's per-node fan-out all run through Do, so the whole
// stack backs off the same way.
//
// The policy follows the daemon's error contract: ErrBackpressure
// (HTTP 429) is a full queue that clears in milliseconds — short
// pause, retry; ErrDegraded (HTTP 503) is disk trouble an operator
// has to notice — longer pause, retry; anything else (413s, 421s,
// transport failures) is returned immediately, because retrying an
// unchanged request cannot help. Pauses double per consecutive retry
// up to MaxBackoff and carry ±Jitter randomization so a fleet of
// retriers doesn't re-converge on the same instant — the thundering
// herd the flat 50ms loop this replaces would have produced.
type RetryPolicy struct {
	// MaxAttempts bounds total calls to the posting function
	// (0 = retry forever, until ctx cancels — the load-tool setting;
	// servers in the request path should bound it).
	MaxAttempts int
	// Backoff429 is the base pause after a backpressure rejection
	// (default 50ms, the daemon's Retry-After floor).
	Backoff429 time.Duration
	// Backoff503 is the base pause after a degraded rejection
	// (default 2s, matching the daemon's Retry-After).
	Backoff503 time.Duration
	// MaxBackoff caps the doubling pause (default 5s).
	MaxBackoff time.Duration
	// Jitter is the fraction of each pause randomized symmetrically
	// around it (default 0.2: a 100ms pause lands in [80ms, 120ms]).
	// Negative disables jitter entirely (deterministic tests).
	Jitter float64
}

// RetryStats accounts one Do call: attempts made and how many retries
// each transient cause forced. Callers surface these (loadgen's
// rejected_429/degraded_retries, the router's per-node acks) so
// backpressure stays visible instead of silently absorbed.
type RetryStats struct {
	Attempts   int
	Retries429 int
	Retries503 int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Backoff429 == 0 {
		p.Backoff429 = 50 * time.Millisecond
	}
	if p.Backoff503 == 0 {
		p.Backoff503 = 2 * time.Second
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// Do calls f until it succeeds, fails permanently, exhausts
// MaxAttempts, or ctx is cancelled (pauses are cancellable, so Ctrl-C
// interrupts a backoff instead of sleeping through it). The last
// error is returned alongside the stats; on cancellation mid-pause
// the error is ctx.Err().
func (p RetryPolicy) Do(ctx context.Context, f func(ctx context.Context) error) (RetryStats, error) {
	p = p.withDefaults()
	var stats RetryStats
	consecutive := 0
	for {
		stats.Attempts++
		err := f(ctx)
		var base time.Duration
		switch {
		case err == nil:
			return stats, nil
		case errors.Is(err, ErrBackpressure):
			stats.Retries429++
			base = p.Backoff429
		case errors.Is(err, ErrDegraded):
			stats.Retries503++
			base = p.Backoff503
		default:
			return stats, err
		}
		if p.MaxAttempts > 0 && stats.Attempts >= p.MaxAttempts {
			return stats, err
		}
		pause := base << consecutive
		if pause > p.MaxBackoff || pause < base { // < base: shift overflow
			pause = p.MaxBackoff
		}
		consecutive++
		if p.Jitter > 0 {
			span := float64(pause) * p.Jitter
			pause = time.Duration(float64(pause) + span*(2*rand.Float64()-1))
		}
		select {
		case <-time.After(pause):
		case <-ctx.Done():
			return stats, ctx.Err()
		}
	}
}
