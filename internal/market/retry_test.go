package market

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetryPolicyRetriesTransients(t *testing.T) {
	p := RetryPolicy{Backoff429: time.Millisecond, Backoff503: time.Millisecond, Jitter: -1}
	calls := 0
	stats, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		switch calls {
		case 1:
			return ErrBackpressure
		case 2:
			return ErrDegraded
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if stats.Attempts != 3 || stats.Retries429 != 1 || stats.Retries503 != 1 {
		t.Fatalf("stats = %+v, want 3 attempts, one retry each", stats)
	}
}

func TestRetryPolicyPermanentErrorsPassThrough(t *testing.T) {
	p := RetryPolicy{Jitter: -1}
	calls := 0
	_, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return ErrBatchTooLarge
	})
	if !errors.Is(err, ErrBatchTooLarge) || calls != 1 {
		t.Fatalf("err = %v after %d calls, want immediate ErrBatchTooLarge", err, calls)
	}
}

func TestRetryPolicyMaxAttempts(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Backoff429: time.Microsecond, Jitter: -1}
	stats, err := p.Do(context.Background(), func(context.Context) error { return ErrBackpressure })
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if stats.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", stats.Attempts)
	}
}

func TestRetryPolicyCtxCancelsBackoff(t *testing.T) {
	// A generous base pause must not delay cancellation: Ctrl-C during
	// a backoff returns promptly with ctx.Err().
	p := RetryPolicy{Backoff429: time.Hour, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.Do(ctx, func(context.Context) error { return ErrBackpressure })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the pause")
	}
}

func TestRetryPolicyBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{Backoff429: 10 * time.Millisecond, MaxBackoff: 25 * time.Millisecond, MaxAttempts: 4, Jitter: -1}
	start := time.Now()
	_, _ = p.Do(context.Background(), func(context.Context) error { return ErrBackpressure })
	// Pauses: 10ms, 20ms, 25ms (capped) = 55ms minimum.
	if d := time.Since(start); d < 55*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 55ms (doubling then cap)", d)
	}
}
