package market

import (
	"fmt"
	"testing"
)

// benchFingerprints builds n fingerprints of width digests each, every
// app sharing a sliding window of a common digest pool so the inverted
// index carries realistic overlap (neighbors exist, but no digest is
// universal).
func benchFingerprints(n, width int) []Fingerprint {
	fps := make([]Fingerprint, n)
	pool := make([]string, n+width)
	for i := range pool {
		pool[i] = fmt.Sprintf("sha256-digest-%06d", i)
	}
	for i := range fps {
		fps[i] = Fingerprint{App: fmt.Sprintf("app-%05d", i), Digests: pool[i : i+width]}
	}
	return fps
}

// seedFingerprints loads a store with a corpus and returns it.
func seedFingerprints(b *testing.B, n int) *Store {
	st, _, err := Open(Config{Dir: b.TempDir(), Shards: 4, QueueCap: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	for _, fp := range benchFingerprints(n, 24) {
		if _, err := st.PutFingerprint(fp); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

// BenchmarkFingerprintIngest measures PutFingerprint throughput —
// canonicalize, WAL append, index update — with fresh apps so the
// identical-upload dedup path is checked but never taken.
func BenchmarkFingerprintIngest(b *testing.B) {
	st, _, err := Open(Config{Dir: b.TempDir(), Shards: 4, QueueCap: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	fps := benchFingerprints(4096, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp := fps[i%len(fps)]
		if i >= len(fps) {
			fp.App = fmt.Sprintf("%s-lap-%d", fp.App, i/len(fps))
		}
		if _, err := st.PutFingerprint(fp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarQuery measures top-K similarity lookups against
// corpora of increasing size. The acceptance bar is sub-quadratic
// scaling: the inverted index visits only apps sharing at least one
// digest with the probe, so ns/op must grow far slower than the corpus
// (a naive all-pairs scan would grow linearly here, making the full
// workload quadratic).
func BenchmarkSimilarQuery(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("corpus-%d", n), func(b *testing.B) {
			st := seedFingerprints(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Similar(fmt.Sprintf("app-%05d", i%n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFusedVerdict measures the full two-channel verdict: reports
// tally plus the similarity walk over ranked neighbors.
func BenchmarkFusedVerdict(b *testing.B) {
	st := seedFingerprints(b, 1024)
	evs := benchEvents(2048)
	if _, _, err := st.Ingest(evs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Verdict(fmt.Sprintf("app-%05d", i%1024))
	}
}
