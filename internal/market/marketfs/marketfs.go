// Package marketfs is the filesystem seam under the market store's
// durability machinery. Everything internal/market does to disk —
// appending WAL segments, fsyncing them, committing checkpoint files
// with the temp-write/fsync/rename/dir-fsync dance, compacting old
// segments — goes through the FS interface, so the exact same code
// runs against the real OS in production and against the Fault
// implementation (an in-memory disk with crash-points, torn writes,
// fsync failures, and ENOSPC drawn from internal/chaos profiles) in
// the crash-recovery torture tests.
//
// The interface is deliberately semantic rather than flag-driven:
// Open (read + truncate, the recovery mode), OpenAppend (the WAL
// mode), and Create (the checkpoint-temp mode) name the three access
// patterns the store actually has, which keeps the fault model honest
// — the Fault FS knows what an append is and can tear it the way a
// real disk tears one.
package marketfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is what the market store requires of a filesystem.
type FS interface {
	// MkdirAll creates dir and parents. Directory creation is treated
	// as immediately durable by the Fault model (the store creates its
	// directories once, at first open).
	MkdirAll(dir string) error
	// Open opens an existing file for reading and recovery truncation
	// (WAL replay).
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent (WAL
	// segments). Writes land at the end regardless of any read state.
	OpenAppend(name string) (File, error)
	// Create opens name truncated to empty, creating it if absent
	// (checkpoint temp files).
	Create(name string) (File, error)
	// ReadFile reads a whole file (checkpoint load, meta.json).
	ReadFile(name string) ([]byte, error)
	// WriteFile replaces a whole file without durability guarantees
	// (meta.json; the checkpoint path never uses it).
	WriteFile(name string, data []byte) error
	// Rename atomically replaces newname with oldname's file. The
	// rename itself is atomic; its durability needs SyncDir.
	Rename(oldname, newname string) error
	// Remove deletes a file (compaction). Durability needs SyncDir.
	Remove(name string) error
	// Glob lists files in dir matching pattern (a filepath.Match
	// pattern against the base name), sorted, as full paths.
	Glob(dir, pattern string) ([]string, error)
	// SyncDir makes dir's entries (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// File is one open handle. Not every method is meaningful for every
// open mode (Write on a read-only handle, Read on an append handle);
// the store only calls the ones its mode supports.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's content to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail recovery).
	Truncate(size int64) error
	// Size reports the file's current length in bytes.
	Size() (int64, error)
}

// OS is the real-filesystem implementation.
type OS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Open implements FS.
func (OS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Create implements FS.
func (OS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS.
func (OS) WriteFile(name string, data []byte) error {
	return os.WriteFile(name, data, 0o644)
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Glob implements FS.
func (OS) Glob(dir, pattern string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS. On Linux an fsync of the directory fd is
// what makes renames and creates within it crash-durable.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

var _ FS = OS{}
