package marketfs

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"strings"
	"testing"

	"bombdroid/internal/chaos"
)

func mustWrite(t *testing.T, f File, data []byte) {
	t.Helper()
	if _, err := f.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

func readAll(t *testing.T, fa *Fault, name string) []byte {
	t.Helper()
	b, err := fa.ReadFile(name)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", name, err)
	}
	return b
}

// TestFaultSyncedSurvivesCrash: content synced before the crash (file
// fsync + parent dir fsync) is exactly what a reopen sees; unsynced
// appends survive only as a prefix, possibly torn mid-append.
func TestFaultSyncedSurvivesCrash(t *testing.T) {
	fa := NewFault(nil, 7)
	if err := fa.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fa.OpenAppend("d/log")
	if err != nil {
		t.Fatal(err)
	}
	synced := []byte("durable-part")
	mustWrite(t, f, synced)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fa.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, []byte("volatile-part"))

	fa.Crash()
	if _, err := fa.Open("d/log"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Open on crashed fs: err = %v, want ErrCrashed", err)
	}
	fa.Recover()

	got := readAll(t, fa, "d/log")
	if !bytes.HasPrefix(got, synced) {
		t.Fatalf("synced bytes lost: got %q", got)
	}
	if len(got) > len(synced)+len("volatile-part") {
		t.Fatalf("recovered more than was ever written: %q", got)
	}
	// The pre-crash handle is dead even after recovery.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Errorf("stale handle write: err = %v, want ErrCrashed", err)
	}
}

// TestFaultUnsyncedTears: with many separate unsynced appends, a crash
// keeps an in-order prefix of them (the last possibly torn) — never a
// suffix, never a reorder.
func TestFaultUnsyncedTears(t *testing.T) {
	sawPartial := false
	for seed := int64(0); seed < 30; seed++ {
		fa := NewFault(nil, seed)
		fa.MkdirAll("d")
		f, _ := fa.OpenAppend("d/log")
		f.Sync()
		fa.SyncDir("d") // the entry itself must survive
		full := "aaaabbbbccccdddd"
		for i := 0; i < len(full); i += 4 {
			mustWrite(t, f, []byte(full[i:i+4]))
		}
		fa.Crash()
		fa.Recover()
		got := string(readAll(t, fa, "d/log"))
		if !strings.HasPrefix(full, got) {
			t.Fatalf("seed %d: recovered %q is not a prefix of %q", seed, got, full)
		}
		if len(got) > 0 && len(got) < len(full) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no seed produced a partial tail — the torn-write path never ran")
	}
}

// TestFaultRenameAtomic: crash at the rename instant leaves either the
// temp name or the final name (never both, never a blend), and when
// the final name exists its content is the complete synced payload —
// the property the checkpoint commit protocol stands on.
func TestFaultRenameAtomic(t *testing.T) {
	sawOld, sawNew := false, false
	payload := []byte("checkpoint-payload")
	for seed := int64(0); seed < 40; seed++ {
		fa := NewFault(nil, seed)
		fa.MkdirAll("d")
		f, _ := fa.Create("d/ckpt.tmp")
		mustWrite(t, f, payload)
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := fa.SyncDir("d"); err != nil {
			t.Fatal(err)
		}

		fa.CrashAfter(1) // die on the rename itself
		if err := fa.Rename("d/ckpt.tmp", "d/ckpt"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("seed %d: rename should crash, got %v", seed, err)
		}
		fa.Recover()

		_, errOld := fa.ReadFile("d/ckpt.tmp")
		newB, errNew := fa.ReadFile("d/ckpt")
		switch {
		case errOld == nil && errNew == nil:
			t.Fatalf("seed %d: both temp and final exist after crash-at-rename", seed)
		case errNew == nil:
			sawNew = true
			if !bytes.Equal(newB, payload) {
				t.Fatalf("seed %d: final file holds %q, want full payload", seed, newB)
			}
		case errOld == nil:
			sawOld = true
		default:
			t.Fatalf("seed %d: both names gone (old: %v, new: %v)", seed, errOld, errNew)
		}
	}
	if !sawOld || !sawNew {
		t.Errorf("rename crash never exercised both outcomes (old %v, new %v)", sawOld, sawNew)
	}
}

// TestFaultInjectedWriteFaults: the probabilistic faults drawn from a
// chaos profile — hard write failure applies nothing, short write
// applies a strict prefix, sync failure leaves durability where it
// was.
func TestFaultInjectedWriteFaults(t *testing.T) {
	inj := chaos.NewInjector(chaos.Profile{FsWriteFail: 1}, 1)
	fa := NewFault(inj, 1)
	fa.MkdirAll("d")
	f, _ := fa.OpenAppend("d/log")
	if _, err := f.Write([]byte("data")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write-fail: err = %v, want ErrNoSpace", err)
	}
	if n, _ := f.Size(); n != 0 {
		t.Errorf("hard write failure applied %d bytes, want 0", n)
	}

	inj = chaos.NewInjector(chaos.Profile{FsShortWrite: 1}, 2)
	fa = NewFault(inj, 2)
	fa.MkdirAll("d")
	f, _ = fa.OpenAppend("d/log")
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrShortWrite) {
		t.Fatalf("short write: err = %v, want ErrShortWrite", err)
	}
	if n, _ := f.Size(); n >= 10 {
		t.Errorf("short write applied %d bytes, want a strict prefix", n)
	}

	inj = chaos.NewInjector(chaos.Profile{FsSyncFail: 1}, 3)
	fa = NewFault(inj, 3)
	fa.MkdirAll("d")
	f, _ = fa.OpenAppend("d/log")
	mustWrite(t, f, []byte("data"))
	if err := f.Sync(); !errors.Is(err, ErrFsync) {
		t.Fatalf("sync fail: err = %v, want ErrFsync", err)
	}
	if err := fa.SyncDir("d"); !errors.Is(err, ErrFsync) {
		t.Fatalf("dir sync fail: err = %v, want ErrFsync", err)
	}
}

// TestFaultFilterScopesFaults: SetFilter limits injected faults to
// matching paths; other files on the same fs stay healthy.
func TestFaultFilterScopesFaults(t *testing.T) {
	inj := chaos.NewInjector(chaos.Profile{FsWriteFail: 1}, 1)
	fa := NewFault(inj, 1)
	fa.SetFilter(func(p string) bool { return strings.Contains(p, "shard-000") })
	fa.MkdirAll("shard-000")
	fa.MkdirAll("shard-001")

	bad, _ := fa.OpenAppend("shard-000/wal")
	if _, err := bad.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("filtered path: err = %v, want ErrNoSpace", err)
	}
	good, _ := fa.OpenAppend("shard-001/wal")
	if _, err := good.Write([]byte("x")); err != nil {
		t.Fatalf("unfiltered path should write cleanly: %v", err)
	}
}

// TestFaultBasicFS: the mundane FS contract the store leans on —
// globbing, read-back, truncate, seek, not-exist errors.
func TestFaultBasicFS(t *testing.T) {
	fa := NewFault(nil, 1)
	fa.MkdirAll("d")
	for _, name := range []string{"d/wal-00000000.log", "d/wal-00000001.log", "d/ckpt-00000001"} {
		f, err := fa.OpenAppend(name)
		if err != nil {
			t.Fatal(err)
		}
		mustWrite(t, f, []byte(name))
		f.Close()
	}
	segs, err := fa.Glob("d", "wal-*.log")
	if err != nil || len(segs) != 2 {
		t.Fatalf("Glob = %v, %v; want the 2 segments", segs, err)
	}
	if segs[0] != "d/wal-00000000.log" {
		t.Errorf("Glob not sorted: %v", segs)
	}

	f, err := fa.Open("d/wal-00000000.log")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(f)
	if err != nil || string(b) != "d/wal-00000000.log" {
		t.Fatalf("read back %q, %v", b, err)
	}
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Size(); n != 5 {
		t.Errorf("Size after Truncate = %d, want 5", n)
	}

	if _, err := fa.Open("d/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Open missing: err = %v, want fs.ErrNotExist", err)
	}
	if _, err := fa.ReadFile("d/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("ReadFile missing: err = %v, want fs.ErrNotExist", err)
	}
	if err := fa.Remove("d/ckpt-00000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := fa.ReadFile("d/ckpt-00000001"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("removed file still readable")
	}
}

// TestFaultRemoveDurability: an un-SyncDir'd remove can resurrect the
// file at crash; after SyncDir it is gone for good.
func TestFaultRemoveDurability(t *testing.T) {
	resurrected := false
	for seed := int64(0); seed < 30; seed++ {
		fa := NewFault(nil, seed)
		fa.MkdirAll("d")
		f, _ := fa.OpenAppend("d/seg")
		mustWrite(t, f, []byte("x"))
		f.Sync()
		fa.SyncDir("d")
		if err := fa.Remove("d/seg"); err != nil {
			t.Fatal(err)
		}
		fa.Crash()
		fa.Recover()
		if _, err := fa.ReadFile("d/seg"); err == nil {
			resurrected = true
		}
	}
	if !resurrected {
		t.Error("an unsynced remove never resurrected — dir-op durability model inert")
	}

	// With SyncDir the remove is final on every seed.
	for seed := int64(0); seed < 10; seed++ {
		fa := NewFault(nil, seed)
		fa.MkdirAll("d")
		f, _ := fa.OpenAppend("d/seg")
		mustWrite(t, f, []byte("x"))
		f.Sync()
		fa.SyncDir("d")
		fa.Remove("d/seg")
		fa.SyncDir("d")
		fa.Crash()
		fa.Recover()
		if _, err := fa.ReadFile("d/seg"); err == nil {
			t.Fatalf("seed %d: synced remove came back", seed)
		}
	}
}
