package marketfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"

	"bombdroid/internal/chaos"
)

var (
	// ErrCrashed is returned by every operation on a Fault FS after its
	// crash-point fired, until Recover resolves what survived.
	ErrCrashed = errors.New("marketfs: simulated machine crash")
	// ErrNoSpace is the injected hard write failure (ENOSPC-style):
	// the write applied nothing.
	ErrNoSpace = errors.New("marketfs: injected no space left on device")
	// ErrShortWrite is the injected torn write: only a prefix of the
	// buffer was applied before the error.
	ErrShortWrite = errors.New("marketfs: injected short write")
	// ErrFsync is the injected fsync failure: durability did not
	// advance, and (as on real disks) the written data's fate at the
	// next crash is unknown.
	ErrFsync = errors.New("marketfs: injected fsync failure")
)

// Fault is an in-memory filesystem that models what a real disk
// guarantees — and, more importantly, what it does not:
//
//   - file content is durable only up to the last successful Sync;
//     bytes written after it survive a crash as an arbitrary prefix
//     (the torn write);
//   - namespace changes (create, rename, remove) are durable only
//     after SyncDir on the parent; at a crash, an arbitrary prefix of
//     the directory's pending operations has reached the journal —
//     so a rename is atomic (old name or new name, never both, never
//     a mix) but not necessarily durable;
//   - probabilistic faults drawn from a chaos.Profile (FsWriteFail,
//     FsShortWrite, FsSyncFail via a chaos.Injector) hit individual
//     operations without crashing the machine — the degraded-mode
//     diet;
//   - a crash-point (CrashAfter / Crash) freezes the disk mid-flight:
//     the triggering operation is partially applied, every later call
//     returns ErrCrashed, and Recover resolves the surviving state so
//     the store can be reopened against exactly what a power loss
//     would have left.
//
// All decisions draw from seeded rngs, so a torture run is
// reproducible from its seed.
type Fault struct {
	mu      sync.Mutex
	inj     *chaos.Injector
	rng     *rand.Rand
	filter  func(path string) bool
	live    map[string]*memFile // namespace as the running process sees it
	durable map[string]*memFile // entries whose existence survives a crash
	pending map[string][]dirOp  // parent dir → ordered not-yet-durable ops
	dirs    map[string]bool
	epoch   int // bumped by Recover; stale handles fail
	crashed bool
	crashAt int64 // absolute op count that triggers the crash; 0 = disarmed
	ops     int64
	hang    chan struct{} // when non-nil, writes block until it closes
}

// NewFault builds a fault FS. inj supplies the probabilistic
// per-operation faults (nil injects none); seed drives crash-point
// resolution (which prefix of unsynced state survives).
func NewFault(inj *chaos.Injector, seed int64) *Fault {
	return &Fault{
		inj:     inj,
		rng:     rand.New(rand.NewSource(seed)),
		live:    make(map[string]*memFile),
		durable: make(map[string]*memFile),
		pending: make(map[string][]dirOp),
		dirs:    make(map[string]bool),
	}
}

// SetFilter scopes the probabilistic faults to paths f accepts (nil
// means all paths). Crash-points are machine-wide and ignore it.
func (fa *Fault) SetFilter(f func(path string) bool) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	fa.filter = f
}

// SetHang makes every Write block until SetHang(false) — the wedged
// disk that drain deadlines exist for.
func (fa *Fault) SetHang(on bool) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if on && fa.hang == nil {
		fa.hang = make(chan struct{})
	}
	if !on && fa.hang != nil {
		close(fa.hang)
		fa.hang = nil
	}
}

// CrashAfter arms the crash-point n mutating operations from now.
func (fa *Fault) CrashAfter(n int64) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	fa.crashAt = fa.ops + n
}

// Crash triggers the crash immediately.
func (fa *Fault) Crash() {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	fa.crashed = true
}

// Crashed reports whether the crash-point has fired.
func (fa *Fault) Crashed() bool {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return fa.crashed
}

// OpCount reports how many mutating operations have run — the scale
// for randomizing CrashAfter.
func (fa *Fault) OpCount() int64 {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return fa.ops
}

// Recover resolves the post-crash disk: for every directory an
// rng-chosen prefix of its pending namespace ops has survived, and
// for every surviving file its synced content plus an rng-chosen
// (possibly torn) prefix of its unsynced writes. The FS then behaves
// like a freshly mounted disk; handles opened before the crash stay
// dead. No-op if no crash fired.
func (fa *Fault) Recover() {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if !fa.crashed {
		return
	}
	for _, dir := range sortedKeys(fa.pending) {
		ops := fa.pending[dir]
		applyDirOps(fa.durable, ops[:fa.rng.Intn(len(ops)+1)])
	}
	fa.pending = make(map[string][]dirOp)
	seen := make(map[*memFile]bool)
	for _, name := range sortedKeys(fa.durable) {
		f := fa.durable[name]
		if seen[f] {
			continue
		}
		seen[f] = true
		content := append([]byte(nil), f.stable...)
		k := fa.rng.Intn(len(f.ops) + 1)
		for i := 0; i < k; i++ {
			content = f.ops[i].apply(content)
		}
		if k < len(f.ops) && f.ops[k].data != nil {
			// The next unsynced append may have partially reached the
			// platter: the torn write.
			if n := fa.rng.Intn(len(f.ops[k].data) + 1); n > 0 {
				content = append(content, f.ops[k].data[:n]...)
			}
		}
		f.stable = content
		f.live = append([]byte(nil), content...)
		f.ops = nil
	}
	fa.live = make(map[string]*memFile, len(fa.durable))
	for name, f := range fa.durable {
		fa.live[name] = f
	}
	fa.crashed = false
	fa.crashAt = 0
	fa.epoch++
}

// sortedKeys keeps rng consumption deterministic across map iteration
// order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// memOp is one unsynced content mutation: an append (data non-nil) or
// a truncation to size.
type memOp struct {
	data []byte
	size int64
}

func (op memOp) apply(content []byte) []byte {
	if op.data != nil {
		return append(content, op.data...)
	}
	if op.size < int64(len(content)) {
		return content[:op.size]
	}
	return content
}

type memFile struct {
	stable []byte // survives a crash (if the dir entry does)
	live   []byte // what the running process reads
	ops    []memOp
}

const (
	dirCreate = iota
	dirRename
	dirRemove
)

type dirOp struct {
	kind     int
	name, to string
	f        *memFile
}

func applyDirOps(ns map[string]*memFile, ops []dirOp) {
	for _, op := range ops {
		switch op.kind {
		case dirCreate:
			ns[op.name] = op.f
		case dirRename:
			if f, ok := ns[op.name]; ok {
				ns[op.to] = f
				delete(ns, op.name)
			}
		case dirRemove:
			delete(ns, op.name)
		}
	}
}

// faulty reports whether probabilistic faults apply to path.
func (fa *Fault) faulty(path string) bool {
	return fa.inj != nil && (fa.filter == nil || fa.filter(path))
}

// countOp advances the mutation counter and fires the armed
// crash-point. It returns true when THIS operation is the one the
// machine dies on — the caller decides how much of it applied.
func (fa *Fault) countOp() bool {
	fa.ops++
	if fa.crashAt > 0 && fa.ops >= fa.crashAt {
		fa.crashed = true
		return true
	}
	return false
}

// pendDir records a namespace op: applied to the live view at once,
// durable only after SyncDir (or by luck at crash resolution).
func (fa *Fault) pendDir(op dirOp) {
	dir := filepath.Dir(op.name)
	fa.pending[dir] = append(fa.pending[dir], op)
}

// MkdirAll implements FS. Directories are immediately durable — the
// store creates its tree once, before any data it must not lose.
func (fa *Fault) MkdirAll(dir string) error {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return ErrCrashed
	}
	for d := dir; d != "." && d != "/" && d != ""; d = filepath.Dir(d) {
		fa.dirs[d] = true
	}
	return nil
}

// Open implements FS.
func (fa *Fault) Open(name string) (File, error) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return nil, ErrCrashed
	}
	f, ok := fa.live[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &faultFile{fs: fa, name: name, f: f, epoch: fa.epoch}, nil
}

// OpenAppend implements FS.
func (fa *Fault) OpenAppend(name string) (File, error) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return nil, ErrCrashed
	}
	f, ok := fa.live[name]
	if !ok {
		if fa.countOp() {
			return nil, ErrCrashed
		}
		f = &memFile{}
		fa.live[name] = f
		fa.pendDir(dirOp{kind: dirCreate, name: name, f: f})
	}
	return &faultFile{fs: fa, name: name, f: f, epoch: fa.epoch, append: true}, nil
}

// Create implements FS.
func (fa *Fault) Create(name string) (File, error) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return nil, ErrCrashed
	}
	if fa.countOp() {
		return nil, ErrCrashed
	}
	f, ok := fa.live[name]
	if ok {
		f.live = nil
		f.ops = append(f.ops, memOp{size: 0})
	} else {
		f = &memFile{}
		fa.live[name] = f
		fa.pendDir(dirOp{kind: dirCreate, name: name, f: f})
	}
	return &faultFile{fs: fa, name: name, f: f, epoch: fa.epoch, append: true}, nil
}

// ReadFile implements FS.
func (fa *Fault) ReadFile(name string) ([]byte, error) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return nil, ErrCrashed
	}
	f, ok := fa.live[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.live...), nil
}

// WriteFile implements FS: create-or-truncate plus one unsynced
// write, like os.WriteFile.
func (fa *Fault) WriteFile(name string, data []byte) error {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return ErrCrashed
	}
	if fa.countOp() {
		return ErrCrashed
	}
	f, ok := fa.live[name]
	if !ok {
		f = &memFile{}
		fa.live[name] = f
		fa.pendDir(dirOp{kind: dirCreate, name: name, f: f})
	} else {
		f.live = nil
		f.ops = append(f.ops, memOp{size: 0})
	}
	f.live = append(f.live, data...)
	f.ops = append(f.ops, memOp{data: append([]byte(nil), data...)})
	return nil
}

// Rename implements FS.
func (fa *Fault) Rename(oldname, newname string) error {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return ErrCrashed
	}
	f, ok := fa.live[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	if fa.countOp() {
		// The rename itself is atomic even at the crash instant: it
		// either entered the journal (pending, resolved by Recover) or
		// it did not — a coin, never a half-rename.
		if fa.rng.Intn(2) == 0 {
			fa.pendDir(dirOp{kind: dirRename, name: oldname, to: newname})
		}
		return ErrCrashed
	}
	delete(fa.live, oldname)
	fa.live[newname] = f
	fa.pendDir(dirOp{kind: dirRename, name: oldname, to: newname})
	return nil
}

// Remove implements FS.
func (fa *Fault) Remove(name string) error {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return ErrCrashed
	}
	if _, ok := fa.live[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	if fa.countOp() {
		if fa.rng.Intn(2) == 0 {
			fa.pendDir(dirOp{kind: dirRemove, name: name})
		}
		return ErrCrashed
	}
	delete(fa.live, name)
	fa.pendDir(dirOp{kind: dirRemove, name: name})
	return nil
}

// Glob implements FS.
func (fa *Fault) Glob(dir, pattern string) ([]string, error) {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return nil, ErrCrashed
	}
	var names []string
	for name := range fa.live {
		if filepath.Dir(name) != dir {
			continue
		}
		ok, err := filepath.Match(pattern, filepath.Base(name))
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: commits dir's pending namespace ops, in
// order, to the durable view.
func (fa *Fault) SyncDir(dir string) error {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	if fa.crashed {
		return ErrCrashed
	}
	if fa.countOp() {
		// The journal commit raced the crash: a prefix made it.
		ops := fa.pending[dir]
		k := fa.rng.Intn(len(ops) + 1)
		applyDirOps(fa.durable, ops[:k])
		fa.pending[dir] = ops[k:]
		return ErrCrashed
	}
	if fa.faulty(dir) && fa.inj.Hit(fa.inj.P.FsSyncFail, "fs-sync-fail") {
		return fmt.Errorf("%w: %s", ErrFsync, dir)
	}
	applyDirOps(fa.durable, fa.pending[dir])
	delete(fa.pending, dir)
	return nil
}

var _ FS = (*Fault)(nil)

// faultFile is one handle on the fault FS. A Recover kills it: the
// epoch check makes every later call fail like a vanished device.
type faultFile struct {
	fs     *Fault
	name   string
	f      *memFile
	epoch  int
	pos    int64
	append bool
}

func (h *faultFile) check() error {
	if h.fs.crashed || h.epoch != h.fs.epoch {
		return ErrCrashed
	}
	return nil
}

func (h *faultFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if h.pos >= int64(len(h.f.live)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.live[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	gate := h.fs.hang
	h.fs.mu.Unlock()
	if gate != nil {
		<-gate // the wedged disk: blocks until SetHang(false)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if h.fs.countOp() {
		// Machine dies mid-write: an arbitrary prefix reached the
		// in-flight state (Recover may tear it further).
		if n := h.fs.rng.Intn(len(p) + 1); n > 0 {
			h.apply(p[:n])
		}
		return 0, ErrCrashed
	}
	if h.fs.faulty(h.name) {
		if h.fs.inj.Hit(h.fs.inj.P.FsWriteFail, "fs-write-fail") {
			return 0, fmt.Errorf("%w: %s", ErrNoSpace, h.name)
		}
		if h.fs.inj.Hit(h.fs.inj.P.FsShortWrite, "fs-short-write") {
			n := h.fs.rng.Intn(len(p))
			h.apply(p[:n])
			return n, fmt.Errorf("%w: %s: %d of %d bytes", ErrShortWrite, h.name, n, len(p))
		}
	}
	h.apply(p)
	return len(p), nil
}

// apply appends bytes to the live content and the unsynced op log.
// All store writes are sequential (WAL appends, checkpoint temp
// streams), so append is the only write shape the model needs.
func (h *faultFile) apply(p []byte) {
	b := append([]byte(nil), p...)
	h.f.live = append(h.f.live, b...)
	h.f.ops = append(h.f.ops, memOp{data: b})
}

func (h *faultFile) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(h.f.live)) + offset
	}
	if h.pos < 0 {
		h.pos = 0
	}
	return h.pos, nil
}

func (h *faultFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if h.fs.countOp() {
		if h.fs.rng.Intn(2) == 0 {
			h.f.live = memOp{size: size}.apply(h.f.live)
			h.f.ops = append(h.f.ops, memOp{size: size})
		}
		return ErrCrashed
	}
	h.f.live = memOp{size: size}.apply(h.f.live)
	h.f.ops = append(h.f.ops, memOp{size: size})
	return nil
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if h.fs.countOp() {
		// Crash during fsync: the flush raced the failure — a coin
		// whether it completed first.
		if h.fs.rng.Intn(2) == 0 {
			h.f.stable = append([]byte(nil), h.f.live...)
			h.f.ops = nil
		}
		return ErrCrashed
	}
	if h.fs.faulty(h.name) && h.fs.inj.Hit(h.fs.inj.P.FsSyncFail, "fs-sync-fail") {
		return fmt.Errorf("%w: %s", ErrFsync, h.name)
	}
	h.f.stable = append([]byte(nil), h.f.live...)
	h.f.ops = nil
	return nil
}

func (h *faultFile) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	return int64(len(h.f.live)), nil
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	// Closing a dead handle is fine; the data's fate was already
	// decided.
	return nil
}
