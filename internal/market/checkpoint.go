package market

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// A checkpoint is one shard's complete replay-derived state — dedup
// generations, per-app tallies, cumulative record count — snapshotted
// together with the WAL position it covers. Restart then becomes
// O(checkpoint + tail): install the snapshot, replay only records past
// its position, and delete segments wholly behind it (compaction).
//
// Commit protocol (all through marketfs.FS, so the torture tests crash
// it at every step):
//
//  1. sync the WAL through the snapshot position — a checkpoint must
//     never point past durable bytes, even when routine commits skip
//     fsync;
//  2. write the encoding to ckpt-%08d.tmp, fsync, close;
//  3. rename onto ckpt-%08d (atomic: readers see the old file or the
//     new one, never a hybrid);
//  4. fsync the shard directory so the rename survives power loss.
//
// Files are self-validating (magic, length, CRC32-C over the body), so
// Open can take the newest file that decodes, fall back to older ones,
// and fall back to a full replay when none survive. The two newest
// checkpoints are retained; a torn or garbage newest file therefore
// costs one snapshot interval of tail replay, not a full-history scan.
//
// Encoding (little-endian):
//
//	| magic "BDCKPT3\n" | body len u32 | crc32c u32 | body |
//
//	body = seq u64, seg u32, off u64, records u64,
//	       apps         (count u32, then per entry: len u32, bytes, tally i64),
//	       cur          (count u32, then per key:   len u32, bytes),
//	       prev         (count u32, then per key:   len u32, bytes),
//	       timelines    (count u32, then per app:   len u32, bytes,
//	                     evicted u64, entries u32,
//	                     then per entry: at u64, tie u64),
//	       fingerprints (count u32, then per app:   len u32, bytes,
//	                     digests u32,
//	                     then per digest: len u32, bytes)
//
// Binary rather than JSON deliberately: at production dedup windows a
// snapshot holds ~100k keys, and decode speed is the restart path the
// whole feature exists to shorten.
//
// Version note: BDCKPT2 added the timelines section, BDCKPT3 the
// fingerprints section. An older-magic file fails the magic check and
// is skipped like any other unusable snapshot, so a daemon upgraded
// over old data falls back to an older candidate or a full replay —
// which rebuilds everything from the WAL — and writes the current
// version from then on. No separate migration path.

const ckptMagic = "BDCKPT3\n"

// maxCheckpointBody caps a decoded body allocation. Generous: a shard
// would need ~30M dedup keys to reach it.
const maxCheckpointBody = 1 << 31

// errBadCheckpoint marks a checkpoint file that fails validation
// (magic, length, CRC, or structure). The loader skips to the next
// candidate; it never aborts Open.
var errBadCheckpoint = errors.New("market: invalid checkpoint")

type checkpoint struct {
	seq       uint64
	pos       walPos
	records   int64 // cumulative records covered (admits + replayed dups)
	apps      map[string]int64
	cur, prev map[string]struct{}
	tls       map[string]*appTimeline
	fps       map[string][]string // app → canonical fingerprint digests
}

func ckptName(seq uint64) string { return fmt.Sprintf("ckpt-%08d", seq) }

func (c *checkpoint) encode() []byte {
	size := 8 + 4 + 8 + 8 + 4 + 4 + 4
	for app := range c.apps {
		size += 4 + len(app) + 8
	}
	for key := range c.cur {
		size += 4 + len(key)
	}
	for key := range c.prev {
		size += 4 + len(key)
	}
	size += 4
	for app, tl := range c.tls {
		size += 4 + len(app) + 8 + 4 + 16*len(tl.entries)
	}
	size += 4
	for app, digests := range c.fps {
		size += 4 + len(app) + 4
		for _, d := range digests {
			size += 4 + len(d)
		}
	}
	body := make([]byte, 0, size)
	body = binary.LittleEndian.AppendUint64(body, c.seq)
	body = binary.LittleEndian.AppendUint32(body, uint32(c.pos.Seg))
	body = binary.LittleEndian.AppendUint64(body, uint64(c.pos.Off))
	body = binary.LittleEndian.AppendUint64(body, uint64(c.records))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(c.apps)))
	for app, n := range c.apps {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(app)))
		body = append(body, app...)
		body = binary.LittleEndian.AppendUint64(body, uint64(n))
	}
	for _, set := range []map[string]struct{}{c.cur, c.prev} {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(set)))
		for key := range set {
			body = binary.LittleEndian.AppendUint32(body, uint32(len(key)))
			body = append(body, key...)
		}
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(c.tls)))
	for app, tl := range c.tls {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(app)))
		body = append(body, app...)
		body = binary.LittleEndian.AppendUint64(body, uint64(tl.evicted))
		body = binary.LittleEndian.AppendUint32(body, uint32(len(tl.entries)))
		for _, e := range tl.entries {
			body = binary.LittleEndian.AppendUint64(body, uint64(e.at))
			body = binary.LittleEndian.AppendUint64(body, e.tie)
		}
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(c.fps)))
	for app, digests := range c.fps {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(app)))
		body = append(body, app...)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(digests)))
		for _, d := range digests {
			body = binary.LittleEndian.AppendUint32(body, uint32(len(d)))
			body = append(body, d...)
		}
	}

	out := make([]byte, 0, len(ckptMagic)+8+len(body))
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
	return append(out, body...)
}

// decodeCheckpoint validates and decodes one checkpoint file's bytes.
// Every failure wraps errBadCheckpoint so the loader can distinguish
// "this file is bad, try the next" from I/O errors.
func decodeCheckpoint(raw []byte) (*checkpoint, error) {
	if len(raw) < len(ckptMagic)+8 || string(raw[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", errBadCheckpoint)
	}
	raw = raw[len(ckptMagic):]
	bodyLen := binary.LittleEndian.Uint32(raw[0:4])
	sum := binary.LittleEndian.Uint32(raw[4:8])
	if bodyLen > maxCheckpointBody || int64(bodyLen) != int64(len(raw)-8) {
		return nil, fmt.Errorf("%w: body length %d does not match file", errBadCheckpoint, bodyLen)
	}
	body := raw[8:]
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", errBadCheckpoint)
	}

	// One conversion of the whole body; every key below is a substring
	// of it. That pins the body for the life of the maps but turns
	// ~100k per-key allocations into one, and the maps would hold
	// copies of nearly every byte anyway — decode speed is the point.
	d := ckptDecoder{s: string(body)}
	c := &checkpoint{
		seq: d.u64(),
		pos: walPos{},
	}
	c.pos.Seg = int(d.u32())
	c.pos.Off = int64(d.u64())
	c.records = int64(d.u64())
	nApps := d.u32()
	c.apps = make(map[string]int64, nApps)
	for i := uint32(0); i < nApps && d.err == nil; i++ {
		app := d.str()
		c.apps[app] = int64(d.u64())
	}
	for _, set := range []*map[string]struct{}{&c.cur, &c.prev} {
		n := d.u32()
		m := make(map[string]struct{}, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			m[d.str()] = struct{}{}
		}
		*set = m
	}
	nTLs := d.u32()
	c.tls = make(map[string]*appTimeline, nTLs)
	for i := uint32(0); i < nTLs && d.err == nil; i++ {
		app := d.str()
		tl := &appTimeline{evicted: int64(d.u64())}
		nEntries := d.u32()
		if d.err == nil && uint64(nEntries)*16 > uint64(len(d.s)-d.off) {
			d.fail() // length claims more entries than bytes remain
			break
		}
		tl.entries = make([]tlEntry, 0, nEntries)
		for j := uint32(0); j < nEntries && d.err == nil; j++ {
			at := int64(d.u64())
			tie := d.u64()
			tl.entries = append(tl.entries, tlEntry{at: at, tie: tie})
		}
		c.tls[app] = tl
	}
	nFPs := d.u32()
	c.fps = make(map[string][]string, nFPs)
	for i := uint32(0); i < nFPs && d.err == nil; i++ {
		app := d.str()
		nDigests := d.u32()
		if d.err == nil && uint64(nDigests)*4 > uint64(len(d.s)-d.off) {
			d.fail() // length claims more digests than bytes remain
			break
		}
		digests := make([]string, 0, nDigests)
		for j := uint32(0); j < nDigests && d.err == nil; j++ {
			digests = append(digests, d.str())
		}
		c.fps[app] = digests
	}
	if d.err != nil {
		return nil, d.err
	}
	if rest := len(d.s) - d.off; rest != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errBadCheckpoint, rest)
	}
	return c, nil
}

// ckptDecoder cursors through a checkpoint body; the first short read
// poisons it and every later read returns zero values. It reads from a
// string so str() can hand out allocation-free substrings.
type ckptDecoder struct {
	s   string
	off int
	err error
}

func (d *ckptDecoder) u32() uint32 {
	if d.err != nil || len(d.s)-d.off < 4 {
		d.fail()
		return 0
	}
	s := d.s[d.off : d.off+4]
	d.off += 4
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
}

func (d *ckptDecoder) u64() uint64 {
	lo := uint64(d.u32())
	return lo | uint64(d.u32())<<32
}

func (d *ckptDecoder) str() string {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.s)-d.off) {
		d.fail()
		return ""
	}
	s := d.s[d.off : d.off+int(n)]
	d.off += int(n)
	return s
}

func (d *ckptDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated body", errBadCheckpoint)
	}
}
