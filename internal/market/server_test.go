package market

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Store) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	st, _, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := httptest.NewServer(NewHandler(st))
	t.Cleanup(func() { srv.Close(); st.Close() })
	return srv, st
}

func ndjson(evs ...report.Event) *bytes.Buffer {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range evs {
		enc.Encode(ev)
	}
	return &buf
}

func TestHTTPIngestAndVerdict(t *testing.T) {
	srv, _ := newTestServer(t, Config{Threshold: 2})
	cl := &Client{BaseURL: srv.URL}

	res, err := cl.Reports().Post(context.Background(), []report.Event{
		ev("app.h", "b1", "u1"),
		ev("app.h", "b1", "u2"),
		ev("app.h", "b1", "u1"), // dup
	})
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if res.Accepted != 2 || res.Duplicates != 1 {
		t.Fatalf("Post = %+v, want accepted 2, duplicates 1", res)
	}

	v, err := cl.Verdicts().Get(context.Background(), "app.h")
	if err != nil {
		t.Fatalf("Verdict: %v", err)
	}
	if v.App != "app.h" || v.Channels.Reports.Detections != 2 || !v.Flagged {
		t.Errorf("Verdict = %+v, want 2 detections, repackaged", v)
	}
}

func TestHTTPGzip(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	cl := &Client{BaseURL: srv.URL, Gzip: true}
	res, err := cl.Reports().Post(context.Background(), []report.Event{ev("app.gz", "b1", "u1"), ev("app.gz", "b2", "u1")})
	if err != nil {
		t.Fatalf("gzip Post: %v", err)
	}
	if res.Accepted != 2 {
		t.Fatalf("gzip Post accepted = %d, want 2", res.Accepted)
	}

	// A body claiming gzip but carrying garbage is a 400.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/reports", strings.NewReader("not gzip"))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage gzip status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	post := func(body io.Reader) int {
		resp, err := http.Post(srv.URL+"/v1/reports", "application/x-ndjson", body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(strings.NewReader("{not json")); code != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d, want 400", code)
	}
	if code := post(ndjson(report.Event{App: "a", Bomb: "b"})); code != http.StatusBadRequest {
		t.Errorf("missing user status = %d, want 400", code)
	}
	if code := post(strings.NewReader("")); code != http.StatusOK {
		t.Errorf("empty batch status = %d, want 200", code)
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz failed: %v", err)
	} else {
		resp.Body.Close()
	}
}

// TestHTTPBackpressure: with simulated in-flight load holding the
// queue, a legal batch turns into a 429 + Retry-After — transient, so
// the Client maps it back to ErrBackpressure and the device pipeline's
// backoff takes over.
func TestHTTPBackpressure(t *testing.T) {
	srv, st := newTestServer(t, Config{Shards: 1, QueueCap: 8})

	var evs []report.Event
	for i := 0; i < 5; i++ {
		evs = append(evs, ev("app.429", fmt.Sprintf("b%d", i), "u1"))
	}
	st.shards[0].depth.Add(6) // pretend 6 events are queued, uncommitted
	defer st.shards[0].depth.Add(-6)

	resp, err := http.Post(srv.URL+"/v1/reports", "application/x-ndjson", ndjson(evs...))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}

	cl := &Client{BaseURL: srv.URL}
	if _, err := cl.Reports().Post(context.Background(), evs); !errors.Is(err, ErrBackpressure) {
		t.Errorf("Client.Post on saturated store: err = %v, want ErrBackpressure", err)
	}
}

// TestHTTPBatchTooLarge: batches that could never be admitted are a
// permanent 413 (split and resend), never a 429 that a well-behaved
// client would retry verbatim forever.
func TestHTTPBatchTooLarge(t *testing.T) {
	// A batch bigger than the store's whole queue capacity
	// (QueueCap × Shards) is cut off while decoding.
	srv, _ := newTestServer(t, Config{Shards: 1, QueueCap: 4})
	var evs []report.Event
	for i := 0; i < 5; i++ {
		evs = append(evs, ev("app.413", fmt.Sprintf("b%d", i), "u1"))
	}
	if code := postStatus(t, srv.URL, ndjson(evs...)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-capacity batch status = %d, want 413", code)
	}

	// A batch within total capacity whose keys all skew onto one shard
	// trips the per-partition check inside Ingest instead.
	srv2, st2 := newTestServer(t, Config{Shards: 2, QueueCap: 4})
	var skewed []report.Event
	for i := 0; len(skewed) < 5; i++ {
		e := ev("app.skew", fmt.Sprintf("b%d", i), "u1")
		if st2.shardFor(e.Key()) == 0 {
			skewed = append(skewed, e)
		}
	}
	if code := postStatus(t, srv2.URL, ndjson(skewed...)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("skewed batch status = %d, want 413", code)
	}
}

// TestHTTPOversizedEvent: an event too big for a WAL record must be
// refused with 413 before it can be acked — once written, the next
// replay would read it as corruption (the remote-poisoning vector).
func TestHTTPOversizedEvent(t *testing.T) {
	srv, st := newTestServer(t, Config{})

	// Raw wire size past MaxEventBytes: refused while decoding.
	big := fmt.Sprintf("{\"app\":\"app.big\",\"bomb\":\"b1\",\"user\":\"u1\",\"info\":%q}\n",
		strings.Repeat("x", MaxEventBytes))
	if code := postStatus(t, srv.URL, strings.NewReader(big)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized wire event status = %d, want 413", code)
	}

	// Wire-small but escape-inflated: encoding/json HTML-escapes '<'
	// to six bytes, so the stored form would exceed a WAL record even
	// though the wire form passes; the commit path refuses.
	inflated := fmt.Sprintf("{\"app\":\"app.inf\",\"bomb\":\"b1\",\"user\":\"u1\",\"info\":%q}\n",
		strings.Repeat("<", MaxEventBytes/5))
	if code := postStatus(t, srv.URL, strings.NewReader(inflated)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("escape-inflated event status = %d, want 413", code)
	}

	// Neither event was acked or tallied, and the store still works.
	for _, app := range []string{"app.big", "app.inf"} {
		if v := st.Verdict(app); v.Channels.Reports.Detections != 0 {
			t.Errorf("Verdict(%s) = %d detections, want 0", app, v.Channels.Reports.Detections)
		}
	}
	cl := &Client{BaseURL: srv.URL}
	if res, err := cl.Reports().Post(context.Background(), []report.Event{ev("app.ok", "b1", "u1")}); err != nil || res.Accepted != 1 {
		t.Errorf("Post after oversized events = (%+v, %v), want accepted 1", res, err)
	}
}

func postStatus(t *testing.T, base string, body io.Reader) int {
	t.Helper()
	resp, err := http.Post(base+"/v1/reports", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func TestHTTPOversizedBatch(t *testing.T) {
	// The effective per-request cap is min(maxRequestEvents,
	// QueueCap × Shards); one event past it is refused while decoding.
	srv, _ := newTestServer(t, Config{Shards: 2, QueueCap: 8})
	line, _ := json.Marshal(ev("app.big", "b", "u"))
	line = append(line, '\n')
	body := bytes.Repeat(line, 2*8+1)
	if code := postStatus(t, srv.URL, bytes.NewReader(body)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status = %d, want 413", code)
	}
}

// TestHTTPMetricsEndpoint: the handler serves the store's registry on
// /metrics with the market families present.
func TestHTTPMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	cl := &Client{BaseURL: srv.URL}
	if _, err := cl.Reports().Post(context.Background(), []report.Event{ev("app.met", "b1", "u1")}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"market_ingest_events_total",
		"market_wal_records_total",
		"market_http_requests_total",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
}

// TestHealthzJSON: /healthz reports per-shard state as JSON — 200
// with every shard ok, 503 once any shard is degraded, with the
// ok/degraded split in the body either way.
func TestHealthzJSON(t *testing.T) {
	srv, st := newTestServer(t, Config{Shards: 2})

	get := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("/healthz body not JSON: %v", err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != http.StatusOK {
		t.Errorf("healthy /healthz status = %d, want 200", code)
	}
	if body["status"] != "ok" || body["shards_ok"] != float64(2) || body["shards_degraded"] != float64(0) {
		t.Errorf("healthy /healthz body = %v", body)
	}

	st.shards[0].degrade()
	code, body = get()
	if code != http.StatusServiceUnavailable {
		t.Errorf("degraded /healthz status = %d, want 503", code)
	}
	if body["status"] != "degraded" || body["shards_ok"] != float64(1) || body["shards_degraded"] != float64(1) {
		t.Errorf("degraded /healthz body = %v", body)
	}
}

// TestHTTPDegraded503: ingesting into a degraded shard is a 503 with
// a Retry-After (distinct from the 429 backpressure path), and the
// Client maps it to ErrDegraded so loadgen and the device pipeline
// can choose the slower retry beat.
func TestHTTPDegraded503(t *testing.T) {
	srv, st := newTestServer(t, Config{Shards: 1})
	st.shards[0].degrade()

	resp, err := http.Post(srv.URL+"/v1/reports", "application/x-ndjson",
		ndjson(ev("app.503", "b1", "u1")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After header")
	}

	cl := &Client{BaseURL: srv.URL}
	if _, err := cl.Reports().Post(context.Background(), []report.Event{ev("app.503", "b2", "u1")}); !errors.Is(err, ErrDegraded) {
		t.Errorf("Client.Post err = %v, want ErrDegraded", err)
	}
}

// TestHTTPTimeline: the /timeline route serves the merged verdict
// history through the typed client, consistent with /verdict.
func TestHTTPTimeline(t *testing.T) {
	srv, _ := newTestServer(t, Config{Threshold: 2})
	cl := &Client{BaseURL: srv.URL}

	if _, err := cl.Reports().Post(context.Background(), []report.Event{
		{App: "app.tlh", Bomb: "b1", User: "u1", TimeMs: 1000, Info: "k"},
		{App: "app.tlh", Bomb: "b2", User: "u1", TimeMs: 3000, Info: "k"},
		{App: "app.tlh", Bomb: "b3", User: "u1", TimeMs: 2000, Info: "k"},
	}); err != nil {
		t.Fatalf("Post: %v", err)
	}

	tl, err := cl.Timelines().Get(context.Background(), "app.tlh")
	if err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	if tl.App != "app.tlh" || tl.Detections != 3 || !tl.Repackaged {
		t.Fatalf("Timeline = %+v, want 3 detections, repackaged", tl)
	}
	if len(tl.Entries) != 3 || tl.Entries[0].Kind != "first" || tl.Entries[1].Kind != "threshold" {
		t.Fatalf("entries = %+v, want first then threshold", tl.Entries)
	}
	if tl.TimeToVerdictMs != 1000 {
		t.Errorf("time_to_verdict_ms = %d, want 1000 (1000 → 2000)", tl.TimeToVerdictMs)
	}

	empty, err := cl.Timelines().Get(context.Background(), "app.none")
	if err != nil {
		t.Fatalf("Timeline(empty): %v", err)
	}
	if len(empty.Entries) != 0 || empty.TimeToVerdictMs != -1 {
		t.Errorf("empty timeline = %+v", empty)
	}
}

// TestHTTPTraceHeaders: a POST carrying a well-formed obs.TraceHeader
// gets the server's receive→ack duration back in ServerTimingHeader
// (closing the market leg of the report trace); untraced and
// malformed-header POSTs get no timing header.
func TestHTTPTraceHeaders(t *testing.T) {
	srv, st := newTestServer(t, Config{})

	post := func(trace string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/reports",
			ndjson(ev("app.tr", "b-"+trace, "u1")))
		req.Header.Set("Content-Type", "application/x-ndjson")
		if trace != "" {
			req.Header.Set(obs.TraceHeader, trace)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	id := obs.TraceID{0xdead, 0xbeef}
	resp := post(id.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced POST status = %d", resp.StatusCode)
	}
	tv := resp.Header.Get(obs.ServerTimingHeader)
	if tv == "" {
		t.Fatal("traced POST missing server-timing header")
	}
	if us, err := strconv.ParseInt(tv, 10, 64); err != nil || us < 0 {
		t.Fatalf("server-timing %q not a non-negative integer: %v", tv, err)
	}

	if resp := post(""); resp.Header.Get(obs.ServerTimingHeader) != "" {
		t.Error("untraced POST got a server-timing header")
	}
	if resp := post("not-a-trace-id"); resp.Header.Get(obs.ServerTimingHeader) != "" {
		t.Error("malformed trace header got a server-timing header")
	}

	snap := st.Obs().Snapshot()
	if got := snap.Counters["market_traced_requests_total"]; got != 1 {
		t.Errorf("market_traced_requests_total = %d, want 1", got)
	}
}

// TestHTTPFingerprintRoutes drives the fingerprint surface end to end
// through the typed client: upload, read-back, similar, the
// channel-scoped verdict read, and the fused verdict after a
// similarity hit.
func TestHTTPFingerprintRoutes(t *testing.T) {
	srv, _ := newTestServer(t, Config{Threshold: 1})
	cl := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	set := []string{"dg-b", "dg-a", "dg-c"}
	ack, err := cl.Fingerprints().Put(ctx, Fingerprint{App: "app.fp", Digests: set})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if ack.Entries != 3 || !ack.Updated {
		t.Fatalf("ack = %+v, want 3 entries updated", ack)
	}
	fp, err := cl.Fingerprints().Get(ctx, "app.fp")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if fp.App != "app.fp" || len(fp.Digests) != 3 || fp.Digests[0] != "dg-a" {
		t.Errorf("Get = %+v, want canonical digests", fp)
	}
	if _, err := cl.Fingerprints().Get(ctx, "app.none"); !errors.Is(err, ErrNoFingerprint) {
		t.Errorf("Get(unknown) err = %v, want ErrNoFingerprint", err)
	}
	if _, err := cl.Fingerprints().Similar(ctx, "app.none"); !errors.Is(err, ErrNoFingerprint) {
		t.Errorf("Similar(unknown) err = %v, want ErrNoFingerprint", err)
	}

	// A twin plus one report on the original: similar sees score 1.0 and
	// the twin's fused verdict flags through the similarity channel.
	if _, err := cl.Fingerprints().Put(ctx, Fingerprint{App: "app.twin", Digests: set}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Reports().Post(ctx, []report.Event{ev("app.fp", "b1", "u1")}); err != nil {
		t.Fatal(err)
	}
	sim, err := cl.Fingerprints().Similar(ctx, "app.twin")
	if err != nil {
		t.Fatalf("Similar: %v", err)
	}
	if !sim.Known || len(sim.Neighbors) != 1 || sim.Neighbors[0].Score != 1.0 {
		t.Fatalf("Similar = %+v, want the twin at 1.0", sim)
	}
	v, err := cl.Verdicts().Get(ctx, "app.twin")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Flagged || !v.Channels.Similarity.Flagged || v.Channels.Similarity.Neighbor != "app.fp" {
		t.Errorf("fused verdict = %+v, want similarity-flagged via app.fp", v)
	}
	// ?channel=reports answers the tally channel alone.
	rc, err := cl.Verdicts().Reports(ctx, "app.fp")
	if err != nil {
		t.Fatal(err)
	}
	if rc.Detections != 1 || !rc.Flagged {
		t.Errorf("reports channel = %+v, want 1 detection flagged", rc)
	}

	// The probe/df federation rounds answer over HTTP too.
	pr, err := cl.Fingerprints().Probe(ctx, ProbeRequest{Digests: set, Exclude: "app.fp"})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Apps != 2 || len(pr.Candidates) != 1 || pr.Candidates[0].App != "app.twin" {
		t.Errorf("probe = %+v, want app.twin only", pr)
	}
	df, err := cl.Fingerprints().DF(ctx, DFRequest{Digests: []string{"dg-a", "dg-zzz"}})
	if err != nil {
		t.Fatal(err)
	}
	if df.DF["dg-a"] != 2 || df.DF["dg-zzz"] != 0 {
		t.Errorf("df = %+v, want dg-a:2 and dg-zzz omitted", df)
	}
}

// TestHTTPFingerprintTooLarge: an upload past MaxFingerprintEntries is
// a permanent 413 mapped back to ErrFingerprintTooLarge.
func TestHTTPFingerprintTooLarge(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxFingerprintEntries: 2})
	cl := &Client{BaseURL: srv.URL}
	_, err := cl.Fingerprints().Put(context.Background(),
		Fingerprint{App: "app.big", Digests: []string{"a", "b", "c"}})
	if !errors.Is(err, ErrFingerprintTooLarge) {
		t.Errorf("err = %v, want ErrFingerprintTooLarge", err)
	}
}
