package market

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bombdroid/internal/report"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Store) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	st, _, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := httptest.NewServer(NewHandler(st))
	t.Cleanup(func() { srv.Close(); st.Close() })
	return srv, st
}

func ndjson(evs ...report.Event) *bytes.Buffer {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range evs {
		enc.Encode(ev)
	}
	return &buf
}

func TestHTTPIngestAndVerdict(t *testing.T) {
	srv, _ := newTestServer(t, Config{Threshold: 2})
	cl := &Client{BaseURL: srv.URL}

	res, err := cl.Post([]report.Event{
		ev("app.h", "b1", "u1"),
		ev("app.h", "b1", "u2"),
		ev("app.h", "b1", "u1"), // dup
	})
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if res.Accepted != 2 || res.Duplicates != 1 {
		t.Fatalf("Post = %+v, want accepted 2, duplicates 1", res)
	}

	v, err := cl.Verdict("app.h")
	if err != nil {
		t.Fatalf("Verdict: %v", err)
	}
	if v.App != "app.h" || v.Detections != 2 || !v.Repackaged {
		t.Errorf("Verdict = %+v, want 2 detections, repackaged", v)
	}
}

func TestHTTPGzip(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	cl := &Client{BaseURL: srv.URL, Gzip: true}
	res, err := cl.Post([]report.Event{ev("app.gz", "b1", "u1"), ev("app.gz", "b2", "u1")})
	if err != nil {
		t.Fatalf("gzip Post: %v", err)
	}
	if res.Accepted != 2 {
		t.Fatalf("gzip Post accepted = %d, want 2", res.Accepted)
	}

	// A body claiming gzip but carrying garbage is a 400.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/reports", strings.NewReader("not gzip"))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage gzip status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, Config{})

	post := func(body io.Reader) int {
		resp, err := http.Post(srv.URL+"/v1/reports", "application/x-ndjson", body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(strings.NewReader("{not json")); code != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d, want 400", code)
	}
	if code := post(ndjson(report.Event{App: "a", Bomb: "b"})); code != http.StatusBadRequest {
		t.Errorf("missing user status = %d, want 400", code)
	}
	if code := post(strings.NewReader("")); code != http.StatusOK {
		t.Errorf("empty batch status = %d, want 200", code)
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz failed: %v", err)
	} else {
		resp.Body.Close()
	}
}

// TestHTTPBackpressure: a one-shard store with a tiny queue turns an
// oversized batch into a 429 + Retry-After, which the Client maps back
// to ErrBackpressure.
func TestHTTPBackpressure(t *testing.T) {
	srv, _ := newTestServer(t, Config{Shards: 1, QueueCap: 4})

	var evs []report.Event
	for i := 0; i < 5; i++ {
		evs = append(evs, ev("app.429", fmt.Sprintf("b%d", i), "u1"))
	}
	resp, err := http.Post(srv.URL+"/v1/reports", "application/x-ndjson", ndjson(evs...))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}

	cl := &Client{BaseURL: srv.URL}
	if _, err := cl.Post(evs); !errors.Is(err, ErrBackpressure) {
		t.Errorf("Client.Post on saturated store: err = %v, want ErrBackpressure", err)
	}
}

func TestHTTPOversizedBatch(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	// One valid event line, repeated past maxRequestEvents.
	line, _ := json.Marshal(ev("app.big", "b", "u"))
	line = append(line, '\n')
	body := bytes.Repeat(line, maxRequestEvents+1)
	resp, err := http.Post(srv.URL+"/v1/reports", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status = %d, want 413", resp.StatusCode)
	}
}

// TestHTTPMetricsEndpoint: the handler serves the store's registry on
// /metrics with the market families present.
func TestHTTPMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	cl := &Client{BaseURL: srv.URL}
	if _, err := cl.Post([]report.Event{ev("app.met", "b1", "u1")}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"market_ingest_events_total",
		"market_wal_records_total",
		"market_http_requests_total",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
}
