package market

import (
	"sort"

	"bombdroid/internal/report"
)

// Verdict timelines: per-app event-time histories of how the tally
// climbed from first report to threshold crossing — the measured form
// of the paper's §3.5 convergence claim ("how long until enough
// distinct detonations flag the app?").
//
// Storage is per shard, for the same reason the tallies are: a
// shard's live commit order equals its WAL replay order, and the
// retained set below is in fact independent of even that — so a
// restarted daemon (checkpoint + tail, or full replay) serves a
// byte-identical timeline to an uncrashed reference, which verify.sh
// asserts.
//
// Each (shard, app) keeps a bounded, event-time-sorted entry list
// with *head retention*: the earliest tlHead entries are never
// evicted, and when the list exceeds TimelineCap the eviction victim
// is the entry at index tlHead — always the oldest non-head entry.
// The retained set is therefore exactly {the tlHead earliest} ∪ {the
// TimelineCap−tlHead latest} of everything admitted, a pure function
// of the admitted multiset, independent of arrival order.
//
// tlHead is the store's verdict threshold, which buys an exactness
// guarantee: the app's globally k-th earliest report (k ≤ threshold)
// has per-shard rank ≤ k ≤ tlHead, so the first report and the
// threshold-crossing report are always retained with exact cumulative
// counts — eviction can only thin the history *after* the verdict
// flipped, where only the shape of the tail matters.

// tlEntry is one admitted report in a shard's timeline: its event
// time and a key-hash tiebreak that makes (at, tie) a total order, so
// merges and counts are reproducible across restarts and shard
// interleavings.
type tlEntry struct {
	at  int64
	tie uint64
}

func tlLess(a, b tlEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.tie < b.tie
}

// appTimeline is one shard's bounded history for one app.
type appTimeline struct {
	entries []tlEntry // sorted by (at, tie)
	evicted int64     // entries dropped at index head (the mid-gap)
}

// tlInsert admits one report into the shard's timeline for ev.App.
// Caller holds s.mu (the same lock the tallies use).
func (s *shard) tlInsertLocked(ev report.Event) {
	if s.cfg.TimelineCap <= 0 {
		return
	}
	tl := s.tls[ev.App]
	if tl == nil {
		tl = &appTimeline{}
		s.tls[ev.App] = tl
	}
	e := tlEntry{at: ev.TimeMs, tie: tlTie(ev.Key())}
	i := sort.Search(len(tl.entries), func(i int) bool { return !tlLess(tl.entries[i], e) })
	tl.entries = append(tl.entries, tlEntry{})
	copy(tl.entries[i+1:], tl.entries[i:])
	tl.entries[i] = e
	if len(tl.entries) > s.cfg.TimelineCap {
		// Evict the oldest non-head entry; the head (earliest tlHead
		// entries, tlHead = verdict threshold) is never touched.
		h := s.tlHead()
		tl.entries = append(tl.entries[:h], tl.entries[h+1:]...)
		tl.evicted++
	}
}

// tlHead is the per-shard never-evicted prefix length. Clamped below
// the cap so eviction always has a victim.
func (s *shard) tlHead() int {
	h := s.cfg.Threshold
	if h >= s.cfg.TimelineCap {
		h = s.cfg.TimelineCap - 1
	}
	return h
}

// tlTie hashes an event key into the timeline tiebreak.
func tlTie(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// tlSnapshot copies one app's timeline out from under s.mu.
func (s *shard) tlSnapshot(app string) (entries []tlEntry, evicted int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl := s.tls[app]
	if tl == nil {
		return nil, 0
	}
	return append([]tlEntry(nil), tl.entries...), tl.evicted
}

// TimelineEntry is one point on an app's verdict timeline, in event
// time. Count is the cumulative admitted-detection tally *after* this
// report — exact through the threshold crossing (see head retention
// above); past it, a jump bigger than 1 marks evicted mid-history.
type TimelineEntry struct {
	AtMs  int64  `json:"at_ms"`
	Count int64  `json:"count"`
	Kind  string `json:"kind"` // "first" | "report" | "threshold"
}

// Timeline is an app's verdict history as served by
// GET /v1/apps/{app}/timeline.
type Timeline struct {
	App        string `json:"app"`
	Threshold  int    `json:"threshold"`
	Detections int64  `json:"detections"` // == Verdict.Channels.Reports.Detections
	Repackaged bool   `json:"repackaged"`
	Evicted    int64  `json:"evicted"` // mid-history entries not in Entries
	// TimeToVerdictMs is the event-time distance from the first report
	// to the threshold crossing, -1 while the verdict has not flipped.
	TimeToVerdictMs int64           `json:"time_to_verdict_ms"`
	Entries         []TimelineEntry `json:"entries"`
}

// RawTimelineEntry is one retained timeline entry in wire form: event
// time plus the key-hash tiebreak that makes (at_ms, tie) a total
// order. The tie must travel with the entry — it is what keeps a
// k-way merge across shards, and across *nodes*, reproducible when
// event times collide.
type RawTimelineEntry struct {
	AtMs int64  `json:"at_ms"`
	Tie  uint64 `json:"tie"`
}

// TimelinePart is one shard's bounded per-app history as a mergeable
// unit: its retained entries (sorted by (at_ms, tie)) and how many
// mid-history entries were evicted at the head boundary. Parts are
// what federation ships between nodes — merging all parts of all
// nodes is the same computation as merging one node's shards.
type TimelinePart struct {
	Entries []RawTimelineEntry `json:"entries"`
	Evicted int64              `json:"evicted"`
}

// RawTimeline is the federation wire form of an app's timeline state,
// served at GET /v1/apps/{app}/timeline?raw=1: the per-shard parts
// plus the merge parameters (threshold and head-retention length)
// that must agree across every part being merged.
type RawTimeline struct {
	App       string         `json:"app"`
	Threshold int            `json:"threshold"`
	Head      int            `json:"head"`
	Parts     []TimelinePart `json:"parts"`
}

// TimelineParts snapshots the app's per-shard histories in shard-index
// order — the store's side of the federation contract.
func (st *Store) TimelineParts(app string) RawTimeline {
	out := RawTimeline{
		App:       app,
		Threshold: st.cfg.Threshold,
		Head:      st.shards[0].tlHead(),
	}
	for _, s := range st.shards {
		entries, ev := s.tlSnapshot(app)
		part := TimelinePart{Evicted: ev}
		if len(entries) > 0 {
			part.Entries = make([]RawTimelineEntry, len(entries))
			for i, e := range entries {
				part.Entries[i] = RawTimelineEntry{AtMs: e.at, Tie: e.tie}
			}
		}
		out.Parts = append(out.Parts, part)
	}
	return out
}

// MergeTimelineParts performs the k-way merge of bounded per-shard
// histories into one event-time timeline with exact cumulative counts
// at every retained entry. The merge walks all retained entries in
// (at, tie) order; consuming a part's first post-gap entry folds that
// part's evicted count in, so Count stays monotone and ends at
// exactly the summed detections.
//
// The parts may come from one store's shards (Store.Timeline) or from
// every shard of every node of a cluster (cluster.Router.Timeline) —
// the computation is identical, which is why a federated timeline is
// byte-identical to a single-node reference fed the same admitted
// multiset whenever no part has evicted (and why, under eviction, the
// head entries through the threshold crossing and the final counts
// still agree exactly; see DESIGN.md §16 for the argument).
func MergeTimelineParts(app string, threshold, head int, parts []TimelinePart) Timeline {
	type partState struct {
		entries []RawTimelineEntry
		evicted int64
		idx     int   // next entry to consume
		rank    int64 // entries (incl. evicted) consumed so far
	}
	tls := make([]*partState, 0, len(parts))
	var evicted int64
	for _, p := range parts {
		evicted += p.Evicted
		if len(p.Entries) > 0 {
			tls = append(tls, &partState{entries: p.Entries, evicted: p.Evicted})
		}
	}

	out := Timeline{
		App:             app,
		Threshold:       threshold,
		Evicted:         evicted,
		TimeToVerdictMs: -1,
	}
	less := func(a, b RawTimelineEntry) bool {
		if a.AtMs != b.AtMs {
			return a.AtMs < b.AtMs
		}
		return a.Tie < b.Tie
	}
	var count int64
	crossed := false
	for {
		var best *partState
		for _, s := range tls {
			if s.idx >= len(s.entries) {
				continue
			}
			if best == nil || less(s.entries[s.idx], best.entries[best.idx]) {
				best = s
			}
		}
		if best == nil {
			break
		}
		e := best.entries[best.idx]
		// Rank of this entry within its part, counting the evicted
		// mid-gap once the walk moves past the retained head.
		rank := int64(best.idx) + 1
		if best.idx >= head {
			rank += best.evicted
		}
		best.idx++
		count += rank - best.rank
		best.rank = rank

		kind := "report"
		if len(out.Entries) == 0 {
			kind = "first"
		}
		if !crossed && count >= int64(threshold) {
			crossed = true
			kind = "threshold"
			if len(out.Entries) == 0 {
				out.TimeToVerdictMs = 0
			} else {
				out.TimeToVerdictMs = e.AtMs - out.Entries[0].AtMs
			}
		}
		out.Entries = append(out.Entries, TimelineEntry{AtMs: e.AtMs, Count: count, Kind: kind})
	}
	out.Detections = count
	out.Repackaged = crossed
	return out
}

// Timeline merges the app's per-shard histories into its event-time
// verdict timeline — the single-node instance of the same merge the
// cluster router runs across nodes.
func (st *Store) Timeline(app string) Timeline {
	raw := st.TimelineParts(app)
	return MergeTimelineParts(app, raw.Threshold, raw.Head, raw.Parts)
}
