package market

import (
	"sort"

	"bombdroid/internal/report"
)

// Verdict timelines: per-app event-time histories of how the tally
// climbed from first report to threshold crossing — the measured form
// of the paper's §3.5 convergence claim ("how long until enough
// distinct detonations flag the app?").
//
// Storage is per shard, for the same reason the tallies are: a
// shard's live commit order equals its WAL replay order, and the
// retained set below is in fact independent of even that — so a
// restarted daemon (checkpoint + tail, or full replay) serves a
// byte-identical timeline to an uncrashed reference, which verify.sh
// asserts.
//
// Each (shard, app) keeps a bounded, event-time-sorted entry list
// with *head retention*: the earliest tlHead entries are never
// evicted, and when the list exceeds TimelineCap the eviction victim
// is the entry at index tlHead — always the oldest non-head entry.
// The retained set is therefore exactly {the tlHead earliest} ∪ {the
// TimelineCap−tlHead latest} of everything admitted, a pure function
// of the admitted multiset, independent of arrival order.
//
// tlHead is the store's verdict threshold, which buys an exactness
// guarantee: the app's globally k-th earliest report (k ≤ threshold)
// has per-shard rank ≤ k ≤ tlHead, so the first report and the
// threshold-crossing report are always retained with exact cumulative
// counts — eviction can only thin the history *after* the verdict
// flipped, where only the shape of the tail matters.

// tlEntry is one admitted report in a shard's timeline: its event
// time and a key-hash tiebreak that makes (at, tie) a total order, so
// merges and counts are reproducible across restarts and shard
// interleavings.
type tlEntry struct {
	at  int64
	tie uint64
}

func tlLess(a, b tlEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.tie < b.tie
}

// appTimeline is one shard's bounded history for one app.
type appTimeline struct {
	entries []tlEntry // sorted by (at, tie)
	evicted int64     // entries dropped at index head (the mid-gap)
}

// tlInsert admits one report into the shard's timeline for ev.App.
// Caller holds s.mu (the same lock the tallies use).
func (s *shard) tlInsertLocked(ev report.Event) {
	if s.cfg.TimelineCap <= 0 {
		return
	}
	tl := s.tls[ev.App]
	if tl == nil {
		tl = &appTimeline{}
		s.tls[ev.App] = tl
	}
	e := tlEntry{at: ev.TimeMs, tie: tlTie(ev.Key())}
	i := sort.Search(len(tl.entries), func(i int) bool { return !tlLess(tl.entries[i], e) })
	tl.entries = append(tl.entries, tlEntry{})
	copy(tl.entries[i+1:], tl.entries[i:])
	tl.entries[i] = e
	if len(tl.entries) > s.cfg.TimelineCap {
		// Evict the oldest non-head entry; the head (earliest tlHead
		// entries, tlHead = verdict threshold) is never touched.
		h := s.tlHead()
		tl.entries = append(tl.entries[:h], tl.entries[h+1:]...)
		tl.evicted++
	}
}

// tlHead is the per-shard never-evicted prefix length. Clamped below
// the cap so eviction always has a victim.
func (s *shard) tlHead() int {
	h := s.cfg.Threshold
	if h >= s.cfg.TimelineCap {
		h = s.cfg.TimelineCap - 1
	}
	return h
}

// tlTie hashes an event key into the timeline tiebreak.
func tlTie(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// tlSnapshot copies one app's timeline out from under s.mu.
func (s *shard) tlSnapshot(app string) (entries []tlEntry, evicted int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tl := s.tls[app]
	if tl == nil {
		return nil, 0
	}
	return append([]tlEntry(nil), tl.entries...), tl.evicted
}

// TimelineEntry is one point on an app's verdict timeline, in event
// time. Count is the cumulative admitted-detection tally *after* this
// report — exact through the threshold crossing (see head retention
// above); past it, a jump bigger than 1 marks evicted mid-history.
type TimelineEntry struct {
	AtMs  int64  `json:"at_ms"`
	Count int64  `json:"count"`
	Kind  string `json:"kind"` // "first" | "report" | "threshold"
}

// Timeline is an app's verdict history as served by
// GET /v1/apps/{app}/timeline.
type Timeline struct {
	App        string `json:"app"`
	Threshold  int    `json:"threshold"`
	Detections int64  `json:"detections"` // == Verdict.Detections
	Repackaged bool   `json:"repackaged"`
	Evicted    int64  `json:"evicted"` // mid-history entries not in Entries
	// TimeToVerdictMs is the event-time distance from the first report
	// to the threshold crossing, -1 while the verdict has not flipped.
	TimeToVerdictMs int64           `json:"time_to_verdict_ms"`
	Entries         []TimelineEntry `json:"entries"`
}

// Timeline merges the app's per-shard histories into one event-time
// timeline with exact cumulative counts at every retained entry. The
// merge walks all retained entries in (at, tie) order; consuming a
// shard's first post-gap entry folds that shard's evicted count in,
// so Count stays monotone and ends at exactly Verdict.Detections.
func (st *Store) Timeline(app string) Timeline {
	type shardTL struct {
		entries []tlEntry
		evicted int64
		idx     int   // next entry to consume
		rank    int64 // entries (incl. evicted) consumed so far
	}
	tls := make([]*shardTL, 0, len(st.shards))
	var evicted int64
	head := st.shards[0].tlHead()
	for _, s := range st.shards {
		entries, ev := s.tlSnapshot(app)
		evicted += ev
		if len(entries) > 0 {
			tls = append(tls, &shardTL{entries: entries, evicted: ev})
		}
	}

	out := Timeline{
		App:             app,
		Threshold:       st.cfg.Threshold,
		Evicted:         evicted,
		TimeToVerdictMs: -1,
	}
	var count int64
	crossed := false
	for {
		var best *shardTL
		for _, s := range tls {
			if s.idx >= len(s.entries) {
				continue
			}
			if best == nil || tlLess(s.entries[s.idx], best.entries[best.idx]) {
				best = s
			}
		}
		if best == nil {
			break
		}
		e := best.entries[best.idx]
		// Rank of this entry within its shard, counting the evicted
		// mid-gap once the walk moves past the retained head.
		rank := int64(best.idx) + 1
		if best.idx >= head {
			rank += best.evicted
		}
		best.idx++
		count += rank - best.rank
		best.rank = rank

		kind := "report"
		if len(out.Entries) == 0 {
			kind = "first"
		}
		if !crossed && count >= int64(st.cfg.Threshold) {
			crossed = true
			kind = "threshold"
			if len(out.Entries) == 0 {
				out.TimeToVerdictMs = 0
			} else {
				out.TimeToVerdictMs = e.at - out.Entries[0].AtMs
			}
		}
		out.Entries = append(out.Entries, TimelineEntry{AtMs: e.at, Count: count, Kind: kind})
	}
	out.Detections = count
	out.Repackaged = crossed
	return out
}
