package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bombdroid/internal/market/similarity"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// ingestReq is one Ingest call's slice of events for a single shard —
// or, when fp is set, one fingerprint upload riding the same queue,
// group commit, and WAL flush as the report firehose. done is
// buffered (cap 1), so the worker never blocks acking.
type ingestReq struct {
	evs  []report.Event
	fp   *Fingerprint
	done chan ingestRes
}

// size is the request's weight against the shard's queue reservation:
// its event count, or 1 for a fingerprint upload.
func (r ingestReq) size() int {
	if r.fp != nil {
		return 1
	}
	return len(r.evs)
}

type ingestRes struct {
	accepted int
	dups     int
	err      error
}

// shard owns one partition of the key space: a WAL, a dedup window,
// per-app tallies, and the checkpoints that snapshot all three. A
// single worker goroutine consumes its queue, so everything past the
// channel is single-writer; only depth (the admission gate), degraded
// and sealed (read by Ingest/Health/CloseTimeout), and the aggregates
// (read by Verdict) need atomics or locks.
type shard struct {
	id   int
	cfg  Config
	dir  string
	w    *wal
	ckpt shardCkptState

	ch     chan ingestReq
	depth  atomic.Int64 // events enqueued but not yet committed
	exited chan struct{}

	// degraded flips when the shard's disk stops cooperating — a WAL
	// append fails (the bufio stack's state is then unknown, so no
	// further append can be trusted) or checkpointing fails repeatedly.
	// A degraded shard keeps serving reads and keeps draining its queue,
	// but fails every ingest with ErrDegraded instead of crashing the
	// daemon; the other shards carry on.
	degraded atomic.Bool
	// sealed flips once close() has sealed the WAL — CloseTimeout uses
	// it to name the shards that missed the drain deadline.
	sealed atomic.Bool

	// Two-generation dedup window: lookups check both maps, inserts go
	// to cur, and when cur reaches DedupWindow keys the generations
	// rotate (prev is dropped, cur becomes prev). A key is therefore
	// remembered for at least DedupWindow and at most 2×DedupWindow
	// admissions. Replay re-inserts every WAL record in order, which
	// reproduces the rotation sequence — and so the window's exact
	// state — from the log alone; a checkpoint snapshots both maps, so
	// restoring one and replaying the tail lands in the identical state.
	cur, prev map[string]struct{}

	// fps is the shard's slice of the fingerprint registry: latest
	// canonical digest set per owned app (last write wins, serialized
	// by this worker). Worker-owned like cur/prev; reads go through the
	// store-global idx, which mirrors every shard's fps and is synced
	// in bulk after open and per-write during commit.
	fps map[string][]string
	idx *similarity.Index

	mu   sync.Mutex
	apps map[string]int64        // app → admitted (unique, in-window) detections
	tls  map[string]*appTimeline // app → bounded verdict timeline (see timeline.go)

	cEvents    *obs.Counter
	cDups      *obs.Counter
	cRecords   *obs.Counter
	cBatches   *obs.Counter
	gDepth     *obs.Gauge
	gDegraded  *obs.Gauge
	cCkpts     *obs.Counter
	cCkptFails *obs.Counter
	cCompacted *obs.Counter
	hFlushUs   *obs.Histogram
}

// shardCkptState is the worker-owned checkpoint bookkeeping.
type shardCkptState struct {
	seq          uint64 // last committed checkpoint's sequence
	lastPos      walPos // position that checkpoint covers
	records      int64  // cumulative WAL records behind the window+tallies
	sinceRecords int    // records appended since the last checkpoint
	sinceBytes   int64  // bytes appended since the last checkpoint
	failures     int    // consecutive checkpoint failures
}

// ckptFailureLimit is how many consecutive checkpoint failures degrade
// the shard. One failure is a blip the next snapshot absorbs (restart
// just replays a longer tail); a disk that cannot commit any snapshot
// is the same broken disk that will fail appends soon enough.
const ckptFailureLimit = 3

func newShard(id int, cfg Config, idx *similarity.Index) (*shard, ReplayStats, error) {
	label := fmt.Sprintf("%d", id)
	s := &shard{
		id:     id,
		cfg:    cfg,
		idx:    idx,
		ch:     make(chan ingestReq, cfg.QueueCap),
		exited: make(chan struct{}),
		cur:    make(map[string]struct{}),
		fps:    make(map[string][]string),
		apps:   make(map[string]int64),
		tls:    make(map[string]*appTimeline),

		cEvents:    cfg.Obs.Counter(obs.L("market_ingest_events_total", "shard", label)),
		cDups:      cfg.Obs.Counter(obs.L("market_ingest_duplicates_total", "shard", label)),
		cRecords:   cfg.Obs.Counter(obs.L("market_wal_records_total", "shard", label)),
		cBatches:   cfg.Obs.Counter(obs.L("market_commit_batches_total", "shard", label), obs.Volatile()),
		gDepth:     cfg.Obs.Gauge(obs.L("market_shard_queue_depth", "shard", label), obs.Volatile()),
		gDegraded:  cfg.Obs.Gauge(obs.L("market_shard_degraded", "shard", label)),
		cCkpts:     cfg.Obs.Counter(obs.L("market_checkpoints_total", "shard", label)),
		cCkptFails: cfg.Obs.Counter(obs.L("market_checkpoint_failures_total", "shard", label)),
		cCompacted: cfg.Obs.Counter(obs.L("market_compacted_segments_total", "shard", label)),
		// Unlabeled and shared across shards: one histogram of WAL
		// group-commit flush durations for the whole store (wall clock,
		// hence Volatile) — the "group-commit flush" leg of the
		// per-report latency breakdown.
		hFlushUs: cfg.Obs.Histogram("market_commit_flush_us", obs.ExpBuckets(50, 4, 12), obs.Volatile()),
	}
	s.dir = cfg.Dir + "/" + fmt.Sprintf("shard-%03d", id)

	stats, err := s.open()
	if err != nil {
		return nil, ReplayStats{}, err
	}
	// The shard's recovered fingerprint slice enters the store-global
	// index in one pass, before the worker starts taking live writes.
	// App → shard is a fixed hash, so no two shards ever sync the same
	// app.
	for app, digests := range s.fps {
		idx.Set(app, digests)
	}
	s.cRecords.Add(stats.Records)
	go s.run()
	return s, stats, nil
}

// replayRecord dispatches one raw WAL record: fingerprint records
// carry a leading tag byte (fpRecordTag — JSON events always start
// with '{'), everything else decodes as a report event and goes
// through the same dedup gate the live commit path uses. For a
// healthy log the gate never fires (commit only appends
// in-window-novel keys, and replay reproduces the window state record
// by record), but a crash between a successful WAL flush and the ack
// can leave a retried event in the log twice — admitting both would
// double-count it after every restart. Fingerprint replay needs no
// gate: last write wins, and replay preserves write order.
func (s *shard) replayRecord(p []byte) error {
	if len(p) > 0 && p[0] == fpRecordTag {
		fp, err := decodeFingerprint(p)
		if err != nil {
			return err
		}
		s.fps[fp.App] = fp.Digests
		s.ckpt.records++
		return nil
	}
	ev, err := decodeEvent(p)
	if err != nil {
		return err
	}
	if !s.isDup(ev.Key()) {
		s.admit(ev)
	}
	s.ckpt.records++
	return nil
}

// open restores the shard's state: newest valid checkpoint plus WAL
// tail when possible, older checkpoints on corruption, full replay as
// the last resort. After a successful checkpointed open it compacts
// segments wholly behind the restored position.
func (s *shard) open() (ReplayStats, error) {
	if err := s.cfg.FS.MkdirAll(s.dir); err != nil {
		return ReplayStats{}, err
	}
	// A crash can abandon a ckpt-*.tmp mid-commit; it was never
	// renamed, so it holds nothing durable. Clear them out.
	if tmps, err := s.cfg.FS.Glob(s.dir, "ckpt-*.tmp"); err == nil {
		for _, tmp := range tmps {
			s.cfg.FS.Remove(tmp)
		}
	}

	for _, cand := range s.listCheckpoints() {
		raw, err := s.cfg.FS.ReadFile(cand.path)
		if err != nil {
			continue
		}
		c, err := decodeCheckpoint(raw)
		if err != nil {
			continue // torn or garbage snapshot: try the next-older one
		}
		s.cur, s.prev, s.apps, s.tls, s.fps = c.cur, c.prev, c.apps, c.tls, c.fps
		if s.prev == nil {
			s.prev = map[string]struct{}{}
		}
		if s.tls == nil {
			s.tls = map[string]*appTimeline{}
		}
		if s.fps == nil {
			s.fps = map[string][]string{}
		}
		s.ckpt.records = c.records
		w, stats, err := openWAL(s.cfg.FS, s.dir, s.cfg.SegmentBytes, s.cfg.Fsync, c.pos, s.replayRecord)
		if errors.Is(err, errBadStart) {
			// The snapshot decodes but the WAL cannot honor its position
			// (stale checkpoint over truncated segments). errBadStart is
			// guaranteed pre-replay, so resetting here is complete.
			s.cur, s.prev, s.apps = make(map[string]struct{}), nil, make(map[string]int64)
			s.tls = make(map[string]*appTimeline)
			s.fps = make(map[string][]string)
			s.ckpt.records = 0
			continue
		}
		if err != nil {
			return ReplayStats{}, err
		}
		s.w = w
		s.ckpt.seq = c.seq
		s.ckpt.lastPos = c.pos
		s.ckpt.sinceRecords = int(stats.TailRecords) // a long tail re-snapshots promptly
		stats.Records += c.records                   // cumulative = covered + tail
		stats.Checkpoints = 1
		if n, err := w.RemoveBehind(c.pos.Seg); err == nil && n > 0 {
			stats.CompactedSegments = n
			s.cCompacted.Add(int64(n))
		}
		return stats, nil
	}

	// No usable checkpoint: full replay from the first segment. lastPos
	// stays zero, so the close-time snapshot covers the replayed history
	// even when nothing new is ingested — the next open is fast anyway.
	w, stats, err := openWAL(s.cfg.FS, s.dir, s.cfg.SegmentBytes, s.cfg.Fsync, walPos{}, s.replayRecord)
	if err != nil {
		return ReplayStats{}, err
	}
	s.w = w
	return stats, nil
}

type ckptFile struct {
	seq  uint64
	path string
}

// listCheckpoints returns the shard's committed checkpoint files,
// newest first.
func (s *shard) listCheckpoints() []ckptFile {
	names, err := s.cfg.FS.Glob(s.dir, "ckpt-????????")
	if err != nil {
		return nil
	}
	out := make([]ckptFile, 0, len(names))
	for _, name := range names {
		var seq uint64
		if _, err := fmt.Sscanf(baseName(name), "ckpt-%08d", &seq); err != nil {
			continue
		}
		out = append(out, ckptFile{seq: seq, path: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// admit records one event as accepted: it enters the dedup window and
// its app's tally. Called — behind the same isDup gate, in identical
// order — for every event the worker commits and for every record the
// WAL replays; the two paths must stay byte-for-byte the same or a
// restart would change verdicts.
func (s *shard) admit(ev report.Event) {
	if len(s.cur) >= s.cfg.DedupWindow {
		s.prev = s.cur
		s.cur = make(map[string]struct{}, s.cfg.DedupWindow)
	}
	s.cur[ev.Key()] = struct{}{}
	s.mu.Lock()
	s.apps[ev.App]++
	s.tlInsertLocked(ev)
	s.mu.Unlock()
}

func (s *shard) isDup(key string) bool {
	if _, ok := s.cur[key]; ok {
		return true
	}
	_, ok := s.prev[key]
	return ok
}

// appCount reads one app's tally (Verdict path).
func (s *shard) appCount(app string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apps[app]
}

// degrade flips the shard into read-only degraded mode.
func (s *shard) degrade() {
	if !s.degraded.Swap(true) {
		s.gDegraded.Set(1)
	}
}

// run is the shard worker: it takes one queued request, greedily
// drains whatever else is already queued (group commit, bounded by
// MaxBatch events), and commits the lot with a single WAL flush.
func (s *shard) run() {
	defer close(s.exited)
	for {
		req, ok := <-s.ch
		if !ok {
			return
		}
		batch := []ingestReq{req}
		n := req.size()
	drain:
		for n < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.ch:
				if !ok {
					break drain
				}
				batch = append(batch, r)
				n += r.size()
			default:
				break drain
			}
		}
		s.commit(batch, n)
		s.maybeCheckpoint()
	}
}

// commit deduplicates the batch, appends every novel event to the WAL
// as one flush, and only then — after the bytes are handed to the OS —
// admits the events and acks the requests. On a WAL error nothing is
// admitted, so the dedup window and tallies never get ahead of the
// log: an acked event is always replayable, and a failed one is
// retryable without tripping the dedup window. An event too large for
// a WAL record fails only its own request (ErrEventTooLarge) and is
// skipped; the request's other events still commit, and a split-up
// retry dedups them.
//
// A WAL append failure degrades the shard: a bufio flush that errored
// partway leaves an unknown number of bytes in the kernel, so the only
// honest append position is "none — reopen and replay".
func (s *shard) commit(batch []ingestReq, total int) {
	if s.degraded.Load() {
		s.failAll(batch, total, fmt.Errorf("%w: shard %d", ErrDegraded, s.id))
		return
	}
	results := make([]ingestRes, len(batch))
	var payloads [][]byte
	var admitted []report.Event
	var fpApplied []*Fingerprint
	inBatch := make(map[string]struct{})
	var encErr error
	oversized := 0
	for bi, req := range batch {
		if req.fp != nil {
			// A fingerprint identical to the stored one is a dup: no WAL
			// record, no state change, so re-uploading a corpus is free.
			if digestsEqual(s.fps[req.fp.App], req.fp.Digests) {
				results[bi].dups++
				continue
			}
			b, err := encodeFingerprint(req.fp)
			if err != nil {
				encErr = err
				break
			}
			if len(b) > MaxEventBytes {
				// Mirrors the oversized-event gate: a record the WAL
				// cannot replay must never be acked. Permanent.
				results[bi].err = fmt.Errorf("%w: app %q encodes to %d bytes (max %d)",
					ErrFingerprintTooLarge, req.fp.App, len(b), MaxEventBytes)
				oversized++
				continue
			}
			payloads = append(payloads, b)
			fpApplied = append(fpApplied, req.fp)
			results[bi].accepted++
			continue
		}
		for _, ev := range req.evs {
			key := ev.Key()
			if _, ok := inBatch[key]; ok || s.isDup(key) {
				results[bi].dups++
				continue
			}
			b, err := json.Marshal(ev)
			if err != nil {
				encErr = err
				break
			}
			if len(b) > MaxEventBytes {
				// The WAL cannot hold this record (replay would read it
				// as corruption), so it must never be acked. Permanent
				// rejection for this request only; sibling requests in
				// the group commit are unaffected.
				results[bi].err = fmt.Errorf("%w: event %q encodes to %d bytes (max %d)",
					ErrEventTooLarge, ev.Key(), len(b), MaxEventBytes)
				oversized++
				continue
			}
			inBatch[key] = struct{}{}
			payloads = append(payloads, b)
			admitted = append(admitted, ev)
			results[bi].accepted++
		}
	}
	err := encErr
	if err == nil && len(payloads) > 0 {
		flushStart := time.Now()
		if werr := s.w.Append(payloads); werr != nil {
			s.degrade()
			err = fmt.Errorf("%w: shard %d wal append: %v", ErrDegraded, s.id, werr)
		}
		s.hFlushUs.Observe(time.Since(flushStart).Microseconds())
	}
	if err != nil {
		for bi := range results {
			results[bi] = ingestRes{err: err}
		}
	} else {
		for _, ev := range admitted {
			s.admit(ev)
		}
		// Fingerprints apply in WAL order (last write wins), to the
		// worker-owned slice and the store-global index together.
		for _, fp := range fpApplied {
			s.fps[fp.App] = fp.Digests
			s.idx.Set(fp.App, fp.Digests)
		}
		s.ckpt.records += int64(len(payloads))
		s.ckpt.sinceRecords += len(payloads)
		for _, p := range payloads {
			s.ckpt.sinceBytes += walHeaderLen + int64(len(p))
		}
		s.cEvents.Add(int64(len(admitted)))
		s.cDups.Add(int64(total - len(admitted) - len(fpApplied) - oversized))
		s.cRecords.Add(int64(len(payloads)))
		s.cBatches.Inc()
	}
	s.depth.Add(-int64(total))
	s.gDepth.Set(s.depth.Load())
	for bi, req := range batch {
		req.done <- results[bi]
	}
}

// failAll rejects every request in the batch with err, keeping the
// depth/ack bookkeeping identical to a committed batch.
func (s *shard) failAll(batch []ingestReq, total int, err error) {
	s.depth.Add(-int64(total))
	s.gDepth.Set(s.depth.Load())
	for _, req := range batch {
		req.done <- ingestRes{err: err}
	}
}

// maybeCheckpoint snapshots when enough records or bytes accumulated
// since the last snapshot. Worker goroutine only.
func (s *shard) maybeCheckpoint() {
	if s.cfg.CheckpointEvery < 0 || s.degraded.Load() {
		return
	}
	if s.ckpt.sinceRecords < s.cfg.CheckpointEvery && s.ckpt.sinceBytes < s.cfg.CheckpointBytes {
		return
	}
	s.takeCheckpoint()
}

// takeCheckpoint commits one snapshot: sync the WAL through the
// current position, write temp, fsync, rename, fsync dir. On success
// it retires checkpoints beyond the retention pair and compacts
// segments the new snapshot strands; ckptFailureLimit consecutive
// failures degrade the shard. Worker goroutine only (or post-drain
// close).
func (s *shard) takeCheckpoint() {
	pos := s.w.Position()
	if pos == s.ckpt.lastPos {
		return // nothing new to cover
	}
	err := s.writeCheckpoint(pos)
	if err != nil {
		s.cCkptFails.Inc()
		s.ckpt.failures++
		if s.ckpt.failures >= ckptFailureLimit {
			s.degrade()
		}
		return
	}
	s.ckpt.seq++
	s.ckpt.lastPos = pos
	s.ckpt.sinceRecords = 0
	s.ckpt.sinceBytes = 0
	s.ckpt.failures = 0
	s.cCkpts.Inc()

	// Retention + compaction, both best-effort: a failure here costs
	// disk space, not correctness, and the next snapshot retries.
	for _, old := range s.listCheckpoints() {
		if old.seq+1 < s.ckpt.seq {
			s.cfg.FS.Remove(old.path)
		}
	}
	if n, err := s.w.RemoveBehind(pos.Seg); err == nil && n > 0 {
		s.cCompacted.Add(int64(n))
	}
}

func (s *shard) writeCheckpoint(pos walPos) error {
	// The snapshot must never claim bytes the disk does not hold: sync
	// the WAL first, even when routine commits run without Fsync.
	if err := s.w.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	apps := make(map[string]int64, len(s.apps))
	for app, n := range s.apps {
		apps[app] = n
	}
	tls := make(map[string]*appTimeline, len(s.tls))
	for app, tl := range s.tls {
		tls[app] = &appTimeline{
			entries: append([]tlEntry(nil), tl.entries...),
			evicted: tl.evicted,
		}
	}
	s.mu.Unlock()
	// Digest slices are immutable once stored, so the map copy is
	// shallow; the worker owns s.fps, so no lock is needed.
	fps := make(map[string][]string, len(s.fps))
	for app, digests := range s.fps {
		fps[app] = digests
	}
	c := &checkpoint{
		seq:     s.ckpt.seq + 1,
		pos:     pos,
		records: s.ckpt.records,
		apps:    apps,
		cur:     s.cur,
		prev:    s.prev,
		tls:     tls,
		fps:     fps,
	}
	enc := c.encode()

	final := s.dir + "/" + ckptName(c.seq)
	tmp := final + ".tmp"
	f, err := s.cfg.FS.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.cfg.FS.Rename(tmp, final); err != nil {
		return err
	}
	return s.cfg.FS.SyncDir(s.dir)
}

// close stops the worker (after the queue drains), takes a farewell
// checkpoint so the next open replays nothing, and seals the WAL. A
// failed farewell snapshot is not an error — the WAL is already
// durable and the next open falls back to an older snapshot or a full
// replay.
func (s *shard) close() error {
	close(s.ch)
	<-s.exited
	if s.cfg.CheckpointEvery >= 0 && !s.degraded.Load() {
		s.takeCheckpoint()
	}
	err := s.w.Close()
	s.sealed.Store(true)
	return err
}

func decodeEvent(b []byte) (report.Event, error) {
	var ev report.Event
	if err := json.Unmarshal(b, &ev); err != nil {
		return report.Event{}, err
	}
	return ev, nil
}
