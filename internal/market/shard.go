package market

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"bombdroid/internal/obs"
	"bombdroid/internal/report"
)

// ingestReq is one Ingest call's slice of events for a single shard.
// done is buffered (cap 1), so the worker never blocks acking.
type ingestReq struct {
	evs  []report.Event
	done chan ingestRes
}

type ingestRes struct {
	accepted int
	dups     int
	err      error
}

// shard owns one partition of the key space: a WAL, a dedup window,
// and per-app tallies. A single worker goroutine consumes its queue,
// so everything past the channel is single-writer; only depth (the
// admission gate) and the aggregates (read by Verdict) need atomics
// or locks.
type shard struct {
	id  int
	cfg Config
	w   *wal

	ch     chan ingestReq
	depth  atomic.Int64 // events enqueued but not yet committed
	exited chan struct{}

	// Two-generation dedup window: lookups check both maps, inserts go
	// to cur, and when cur reaches DedupWindow keys the generations
	// rotate (prev is dropped, cur becomes prev). A key is therefore
	// remembered for at least DedupWindow and at most 2×DedupWindow
	// admissions. Replay re-inserts every WAL record in order, which
	// reproduces the rotation sequence — and so the window's exact
	// state — from the log alone.
	cur, prev map[string]struct{}

	mu   sync.Mutex
	apps map[string]int64 // app → admitted (unique, in-window) detections

	cEvents  *obs.Counter
	cDups    *obs.Counter
	cRecords *obs.Counter
	cBatches *obs.Counter
	gDepth   *obs.Gauge
}

func newShard(id int, cfg Config) (*shard, ReplayStats, error) {
	label := fmt.Sprintf("%d", id)
	s := &shard{
		id:     id,
		cfg:    cfg,
		ch:     make(chan ingestReq, cfg.QueueCap),
		exited: make(chan struct{}),
		cur:    make(map[string]struct{}),
		apps:   make(map[string]int64),

		cEvents:  cfg.Obs.Counter(obs.L("market_ingest_events_total", "shard", label)),
		cDups:    cfg.Obs.Counter(obs.L("market_ingest_duplicates_total", "shard", label)),
		cRecords: cfg.Obs.Counter(obs.L("market_wal_records_total", "shard", label)),
		cBatches: cfg.Obs.Counter(obs.L("market_commit_batches_total", "shard", label), obs.Volatile()),
		gDepth:   cfg.Obs.Gauge(obs.L("market_shard_queue_depth", "shard", label), obs.Volatile()),
	}
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("shard-%03d", id))
	// Replay routes records through the same dedup gate the live commit
	// path uses. For a healthy log the gate never fires (commit only
	// appends in-window-novel keys, and replay reproduces the window
	// state record by record), but a crash between a successful WAL
	// flush and the ack can leave a retried event in the log twice —
	// admitting both would double-count it after every restart.
	w, stats, err := openWAL(dir, cfg.SegmentBytes, cfg.Fsync, func(ev report.Event) {
		if !s.isDup(ev.Key()) {
			s.admit(ev)
		}
	})
	if err != nil {
		return nil, ReplayStats{}, err
	}
	s.w = w
	s.cRecords.Add(stats.Records)
	go s.run()
	return s, stats, nil
}

// admit records one event as accepted: it enters the dedup window and
// its app's tally. Called — behind the same isDup gate, in identical
// order — for every event the worker commits and for every record the
// WAL replays; the two paths must stay byte-for-byte the same or a
// restart would change verdicts.
func (s *shard) admit(ev report.Event) {
	if len(s.cur) >= s.cfg.DedupWindow {
		s.prev = s.cur
		s.cur = make(map[string]struct{}, s.cfg.DedupWindow)
	}
	s.cur[ev.Key()] = struct{}{}
	s.mu.Lock()
	s.apps[ev.App]++
	s.mu.Unlock()
}

func (s *shard) isDup(key string) bool {
	if _, ok := s.cur[key]; ok {
		return true
	}
	_, ok := s.prev[key]
	return ok
}

// appCount reads one app's tally (Verdict path).
func (s *shard) appCount(app string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apps[app]
}

// run is the shard worker: it takes one queued request, greedily
// drains whatever else is already queued (group commit, bounded by
// MaxBatch events), and commits the lot with a single WAL flush.
func (s *shard) run() {
	defer close(s.exited)
	for {
		req, ok := <-s.ch
		if !ok {
			return
		}
		batch := []ingestReq{req}
		n := len(req.evs)
	drain:
		for n < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.ch:
				if !ok {
					break drain
				}
				batch = append(batch, r)
				n += len(r.evs)
			default:
				break drain
			}
		}
		s.commit(batch, n)
	}
}

// commit deduplicates the batch, appends every novel event to the WAL
// as one flush, and only then — after the bytes are handed to the OS —
// admits the events and acks the requests. On a WAL error nothing is
// admitted, so the dedup window and tallies never get ahead of the
// log: an acked event is always replayable, and a failed one is
// retryable without tripping the dedup window. An event too large for
// a WAL record fails only its own request (ErrEventTooLarge) and is
// skipped; the request's other events still commit, and a split-up
// retry dedups them.
func (s *shard) commit(batch []ingestReq, total int) {
	results := make([]ingestRes, len(batch))
	var payloads [][]byte
	var admitted []report.Event
	inBatch := make(map[string]struct{})
	var encErr error
	oversized := 0
	for bi, req := range batch {
		for _, ev := range req.evs {
			key := ev.Key()
			if _, ok := inBatch[key]; ok || s.isDup(key) {
				results[bi].dups++
				continue
			}
			b, err := json.Marshal(ev)
			if err != nil {
				encErr = err
				break
			}
			if len(b) > MaxEventBytes {
				// The WAL cannot hold this record (replay would read it
				// as corruption), so it must never be acked. Permanent
				// rejection for this request only; sibling requests in
				// the group commit are unaffected.
				results[bi].err = fmt.Errorf("%w: event %q encodes to %d bytes (max %d)",
					ErrEventTooLarge, ev.Key(), len(b), MaxEventBytes)
				oversized++
				continue
			}
			inBatch[key] = struct{}{}
			payloads = append(payloads, b)
			admitted = append(admitted, ev)
			results[bi].accepted++
		}
	}
	err := encErr
	if err == nil && len(payloads) > 0 {
		err = s.w.Append(payloads)
	}
	if err != nil {
		for bi := range results {
			results[bi] = ingestRes{err: err}
		}
	} else {
		for _, ev := range admitted {
			s.admit(ev)
		}
		s.cEvents.Add(int64(len(admitted)))
		s.cDups.Add(int64(total - len(admitted) - oversized))
		s.cRecords.Add(int64(len(payloads)))
		s.cBatches.Inc()
	}
	s.depth.Add(-int64(total))
	s.gDepth.Set(s.depth.Load())
	for bi, req := range batch {
		req.done <- results[bi]
	}
}

// close stops the worker (after the queue drains) and seals the WAL.
func (s *shard) close() error {
	close(s.ch)
	<-s.exited
	return s.w.Close()
}

func decodeEvent(b []byte) (report.Event, error) {
	var ev report.Event
	if err := json.Unmarshal(b, &ev); err != nil {
		return report.Event{}, err
	}
	return ev, nil
}
