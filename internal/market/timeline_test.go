package market

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"bombdroid/internal/report"
)

// tev builds a timeline-test event with an explicit event time.
func tev(app, bomb string, atMs int64) report.Event {
	return report.Event{App: app, Bomb: bomb, User: "u", TimeMs: atMs, Info: "k"}
}

// requireMonotone asserts the timeline invariants every consumer leans
// on: event times sorted, counts strictly increasing, kinds well
// placed, final count equal to the verdict tally.
func requireMonotone(t *testing.T, st *Store, tl Timeline) {
	t.Helper()
	var prevAt, prevCount int64 = -1 << 62, 0
	for i, e := range tl.Entries {
		if e.AtMs < prevAt {
			t.Fatalf("entry %d: at_ms %d < previous %d", i, e.AtMs, prevAt)
		}
		if e.Count <= prevCount {
			t.Fatalf("entry %d: count %d not above previous %d", i, e.Count, prevCount)
		}
		prevAt, prevCount = e.AtMs, e.Count
		switch {
		case i == 0 && e.Kind != "first" && e.Kind != "threshold":
			t.Fatalf("entry 0 kind = %q", e.Kind)
		case i > 0 && e.Kind == "first":
			t.Fatalf("entry %d claims kind first", i)
		}
	}
	v := st.Verdict(tl.App)
	if tl.Detections != v.Channels.Reports.Detections || tl.Repackaged != v.Flagged {
		t.Fatalf("timeline (%d, %v) disagrees with verdict (%d, %v)",
			tl.Detections, tl.Repackaged, v.Channels.Reports.Detections, v.Flagged)
	}
	if len(tl.Entries) > 0 && tl.Entries[len(tl.Entries)-1].Count != v.Channels.Reports.Detections {
		t.Fatalf("final count %d != verdict detections %d",
			tl.Entries[len(tl.Entries)-1].Count, v.Channels.Reports.Detections)
	}
}

func TestTimelineBasic(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Threshold: 3})
	defer st.Close()

	// Submit out of event-time order: the timeline must still come back
	// sorted by event time with exact cumulative counts.
	evs := []report.Event{
		tev("app.tl", "b3", 3000),
		tev("app.tl", "b1", 1000),
		tev("app.tl", "b5", 5000),
		tev("app.tl", "b2", 2000),
		tev("app.tl", "b4", 4000),
	}
	if _, _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}

	tl := st.Timeline("app.tl")
	requireMonotone(t, st, tl)
	if len(tl.Entries) != 5 || tl.Evicted != 0 {
		t.Fatalf("entries = %d (evicted %d), want 5 (0)", len(tl.Entries), tl.Evicted)
	}
	if tl.Entries[0].Kind != "first" || tl.Entries[0].AtMs != 1000 {
		t.Errorf("first entry = %+v, want kind first at 1000", tl.Entries[0])
	}
	// Threshold 3 crosses at the third-earliest report, event time 3000.
	if tl.Entries[2].Kind != "threshold" || tl.Entries[2].AtMs != 3000 {
		t.Errorf("threshold entry = %+v, want crossing at 3000", tl.Entries[2])
	}
	if tl.TimeToVerdictMs != 2000 {
		t.Errorf("time_to_verdict_ms = %d, want 2000", tl.TimeToVerdictMs)
	}
	if !tl.Repackaged || tl.Detections != 5 {
		t.Errorf("verdict summary = (%d, %v), want (5, true)", tl.Detections, tl.Repackaged)
	}

	// Unknown apps get an empty, not-crossed timeline.
	empty := st.Timeline("app.unknown")
	if len(empty.Entries) != 0 || empty.Repackaged || empty.TimeToVerdictMs != -1 {
		t.Errorf("unknown-app timeline = %+v, want empty", empty)
	}
}

// TestTimelineHeadRetention: with far more reports than TimelineCap,
// the head (earliest Threshold entries, with the first report and the
// threshold crossing) survives eviction with exact counts, the merged
// count still ends at the verdict tally, and Evicted reports the gap.
func TestTimelineHeadRetention(t *testing.T) {
	st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Threshold: 3, TimelineCap: 8})
	defer st.Close()

	const n = 100
	evs := make([]report.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, tev("app.big", fmt.Sprintf("b%03d", i), int64(1000+i*10)))
	}
	if _, _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}

	tl := st.Timeline("app.big")
	requireMonotone(t, st, tl)
	if tl.Detections != n {
		t.Fatalf("detections = %d, want %d", tl.Detections, n)
	}
	if tl.Evicted == 0 {
		t.Fatal("expected mid-history eviction at cap 8 with 100 reports")
	}
	retained := 0
	for _, s := range st.shards {
		entries, _ := s.tlSnapshot("app.big")
		if len(entries) > st.cfg.TimelineCap {
			t.Fatalf("shard holds %d entries past cap %d", len(entries), st.cfg.TimelineCap)
		}
		retained += len(entries)
	}
	if int64(retained)+tl.Evicted != n {
		t.Fatalf("retained %d + evicted %d != %d admitted", retained, tl.Evicted, n)
	}
	// Head exactness: entries 1..3 are the globally earliest reports,
	// so the crossing is at the 3rd event time with count exactly 3.
	if tl.Entries[0].AtMs != 1000 || tl.Entries[0].Count != 1 {
		t.Errorf("first entry = %+v, want count 1 at 1000", tl.Entries[0])
	}
	if tl.Entries[2].Kind != "threshold" || tl.Entries[2].AtMs != 1020 || tl.Entries[2].Count != 3 {
		t.Errorf("threshold entry = %+v, want count 3 at 1020", tl.Entries[2])
	}
	if tl.TimeToVerdictMs != 20 {
		t.Errorf("time_to_verdict_ms = %d, want 20", tl.TimeToVerdictMs)
	}
	// The tail is the latest reports; the final entry is the last event.
	if last := tl.Entries[len(tl.Entries)-1]; last.AtMs != int64(1000+(n-1)*10) || last.Count != n {
		t.Errorf("last entry = %+v, want count %d at %d", last, n, 1000+(n-1)*10)
	}
}

// TestTimelineOrderIndependence: the served timeline is a pure
// function of the admitted multiset — feeding the same events in
// shuffled orders and batchings yields byte-identical JSON.
func TestTimelineOrderIndependence(t *testing.T) {
	const n = 60
	base := make([]report.Event, 0, n)
	for i := 0; i < n; i++ {
		// Duplicate event times exercise the tie hash.
		base = append(base, tev("app.ord", fmt.Sprintf("b%03d", i), int64(1000+(i%7)*10)))
	}

	serve := func(seed int64) string {
		st, _ := mustOpen(t, Config{Dir: t.TempDir(), Shards: 2, Threshold: 3, TimelineCap: 16})
		defer st.Close()
		evs := append([]report.Event(nil), base...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
		for len(evs) > 0 {
			k := 1 + rng.Intn(5)
			if k > len(evs) {
				k = len(evs)
			}
			if _, _, err := st.Ingest(evs[:k]); err != nil {
				t.Fatal(err)
			}
			evs = evs[k:]
		}
		tl := st.Timeline("app.ord")
		requireMonotone(t, st, tl)
		b, err := json.Marshal(tl)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	want := serve(1)
	for seed := int64(2); seed <= 5; seed++ {
		if got := serve(seed); got != want {
			t.Fatalf("seed %d timeline diverged:\n got %s\nwant %s", seed, got, want)
		}
	}
}

// TestTimelineRestartIdentical: a clean restart (checkpoint restore,
// no tail) and a checkpoint-less restart (full WAL replay) both serve
// timelines byte-identical to the pre-restart store's.
func TestTimelineRestartIdentical(t *testing.T) {
	for _, ckpt := range []int{0, -1} { // default cadence vs. disabled
		name := "checkpoint"
		if ckpt < 0 {
			name = "full-replay"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{Dir: t.TempDir(), Shards: 2, Threshold: 3,
				TimelineCap: 8, CheckpointEvery: ckpt}
			st, _ := mustOpen(t, cfg)
			for i := 0; i < 50; i++ {
				if _, _, err := st.Ingest([]report.Event{
					tev("app.rs", fmt.Sprintf("b%03d", i), int64(1000+i*3)),
				}); err != nil {
					t.Fatal(err)
				}
			}
			want, err := json.Marshal(st.Timeline("app.rs"))
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st2, _ := mustOpen(t, cfg)
			defer st2.Close()
			got, err := json.Marshal(st2.Timeline("app.rs"))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("timeline changed across restart:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestCheckpointTimelineRoundTrip covers the BDCKPT3 timelines section
// of the binary codec, including an empty timeline map and a v1-magic
// file being rejected outright.
func TestCheckpointTimelineRoundTrip(t *testing.T) {
	c := &checkpoint{
		seq:  3,
		pos:  walPos{Seg: 1, Off: 77},
		apps: map[string]int64{"a": 2},
		cur:  map[string]struct{}{"k": {}},
		tls: map[string]*appTimeline{
			"a": {entries: []tlEntry{{at: 5, tie: 9}, {at: 7, tie: 1}}, evicted: 4},
			"b": {},
		},
	}
	got, err := decodeCheckpoint(c.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got.tls["a"], c.tls["a"]) {
		t.Errorf("timeline a round-trip: got %+v, want %+v", got.tls["a"], c.tls["a"])
	}
	if tl := got.tls["b"]; tl == nil || len(tl.entries) != 0 || tl.evicted != 0 {
		t.Errorf("empty timeline b round-trip: %+v", tl)
	}

	// A nil tls map (as old in-memory states might build) encodes as a
	// zero-count section and decodes to an empty map.
	noTL := &checkpoint{seq: 1, apps: map[string]int64{}, cur: map[string]struct{}{}}
	got, err = decodeCheckpoint(noTL.encode())
	if err != nil {
		t.Fatalf("decode nil-tls: %v", err)
	}
	if got.tls == nil || len(got.tls) != 0 {
		t.Errorf("nil-tls decode = %v, want empty map", got.tls)
	}

	// A v1 file (old magic) must fail the magic check, not mis-decode.
	enc := c.encode()
	v1 := append([]byte("BDCKPT1\n"), enc[len(ckptMagic):]...)
	if _, err := decodeCheckpoint(v1); err == nil {
		t.Error("v1-magic checkpoint decoded under v3")
	}

	// An entry count claiming more than the remaining bytes must fail
	// cleanly instead of allocating or over-reading — with the CRC
	// recomputed so the structural guard, not the checksum, catches it.
	single := &checkpoint{seq: 1, apps: map[string]int64{}, cur: map[string]struct{}{},
		tls: map[string]*appTimeline{"a": {entries: []tlEntry{{at: 5, tie: 9}}}}}
	bad := single.encode()
	body := bad[len(ckptMagic)+8:]
	// The entry count sits before the 16-byte entry and the trailing
	// empty fingerprint section (4 bytes).
	binary.LittleEndian.PutUint32(body[len(body)-4-16-4:], 1<<20) // inflate entry count
	binary.LittleEndian.PutUint32(bad[len(ckptMagic)+4:], crc32.Checksum(body, castagnoli))
	if _, err := decodeCheckpoint(bad); err == nil {
		t.Error("oversized entry count decoded")
	}
}
