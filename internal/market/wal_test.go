package market

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bombdroid/internal/market/marketfs"
	"bombdroid/internal/report"
)

func ev(app, bomb, user string) report.Event {
	return report.Event{App: app, Bomb: bomb, User: user, TimeMs: 1000, Info: "k"}
}

func mustOpen(t *testing.T, cfg Config) (*Store, ReplayStats) {
	t.Helper()
	st, stats, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, stats
}

// writeEvents pushes n events with distinct keys for app through st.
func writeEvents(t *testing.T, st *Store, app string, n int) {
	t.Helper()
	evs := make([]report.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, ev(app, fmt.Sprintf("bomb-%d", i), "user-1"))
	}
	accepted, dups, err := st.Ingest(evs)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if accepted != n || dups != 0 {
		t.Fatalf("Ingest = (%d, %d), want (%d, 0)", accepted, dups, n)
	}
}

// TestWALTornTailRecovery: write N records, chop the last one mid-way,
// and reopen. Recovery must truncate the torn record, replay the other
// N-1, and leave the verdict tally matching a store that never saw the
// torn event.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.x", 10)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: drop 3 bytes off the only segment, slicing the
	// last record's payload.
	seg := filepath.Join(dir, "shard-000", "wal-00000000.log")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Records != 9 {
		t.Errorf("replayed %d records, want 9", stats.Records)
	}
	if stats.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", stats.TornTails)
	}
	if stats.TruncatedBytes == 0 {
		t.Error("TruncatedBytes = 0, want > 0")
	}
	if v := st2.Verdict("app.x"); v.Channels.Reports.Detections != 9 {
		t.Errorf("Detections after recovery = %d, want 9", v.Channels.Reports.Detections)
	}

	// The torn event was never acked as durable by this store instance;
	// resubmitting it must land as a fresh accept, not a duplicate.
	accepted, dups, err := st2.Ingest([]report.Event{ev("app.x", "bomb-9", "user-1")})
	if err != nil || accepted != 1 || dups != 0 {
		t.Fatalf("resubmit after torn tail = (%d, %d, %v), want (1, 0, nil)", accepted, dups, err)
	}
	if v := st2.Verdict("app.x"); v.Channels.Reports.Detections != 10 {
		t.Errorf("Detections after resubmit = %d, want 10", v.Channels.Reports.Detections)
	}
}

// TestWALTornHeader: truncating into the 8-byte header (not just the
// payload) is also a recoverable torn tail.
func TestWALTornHeader(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.h", 3)
	st.Close()

	seg := filepath.Join(dir, "shard-000", "wal-00000000.log")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last record's start: replay forward counting offsets.
	// Simpler: append 4 stray bytes (a torn header) instead.
	if err := os.WriteFile(seg, append(b, 0xde, 0xad, 0xbe, 0xef), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Records != 3 || stats.TornTails != 1 {
		t.Errorf("stats = %+v, want 3 records, 1 torn tail", stats)
	}
}

// TestWALAppendRejectsOversized: Append must refuse a record the
// replay path could not read back — replay treats a length prefix
// past maxWALRecord as torn tail/corruption, so writing one would
// lose the record (and every acked record after it) or brick Open.
// The refusal happens before any byte reaches the file.
func TestWALAppendRejectsOversized(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(marketfs.OS{}, dir, 64<<20, false, walPos{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	good, _ := json.Marshal(ev("app.w", "b", "u"))
	if err := w.Append([][]byte{good, make([]byte, maxWALRecord+1)}); err == nil {
		t.Fatal("Append with an oversized record should fail")
	}
	if err := w.Append([][]byte{good, nil}); err == nil {
		t.Fatal("Append with an empty record should fail")
	}
	// The rejections wrote nothing: a good append still works and a
	// reopen replays exactly it.
	if err := w.Append([][]byte{good}); err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := 0
	w2, stats, err := openWAL(marketfs.OS{}, dir, 64<<20, false, walPos{}, func([]byte) error { replayed++; return nil })
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if stats.Records != 1 || replayed != 1 || stats.TornTails != 0 {
		t.Errorf("reopen stats = %+v (replayed %d), want exactly 1 clean record", stats, replayed)
	}
}

// TestWALReplayDedupsDuplicateRecords: a crash (or flush error) after
// bytes reached the log but before the ack leaves a retried event in
// the WAL twice. Replay must run records through the same dedup gate
// as live commits, or every restart would inflate the tallies and
// flip verdicts.
func TestWALReplayDedupsDuplicateRecords(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.dup", 1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The segment holds exactly one record; append a byte-identical
	// copy, as a client retry after a post-flush commit error would.
	seg := filepath.Join(dir, "shard-000", "wal-00000000.log")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, append(b, b...), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Records != 2 {
		t.Errorf("replayed %d records, want 2 (the duplicate is still read)", stats.Records)
	}
	if v := st2.Verdict("app.dup"); v.Channels.Reports.Detections != 1 {
		t.Errorf("Detections = %d, want 1 — duplicate WAL record double-counted", v.Channels.Reports.Detections)
	}
	// The dedup window knows the key: resubmitting is a duplicate.
	if a, d, err := st2.Ingest([]report.Event{ev("app.dup", "bomb-0", "user-1")}); err != nil || a != 0 || d != 1 {
		t.Fatalf("resubmit = (%d, %d, %v), want (0, 1, nil)", a, d, err)
	}
}

// TestWALRotation: a small SegmentBytes forces rotation; replay must
// walk all segments in order and rebuild the full tally. Checkpoints
// are disabled so every segment actually replays (a shutdown snapshot
// would skip and compact them — covered in checkpoint_test.go).
func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 256, CheckpointEvery: -1}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.rot", 50)
	st.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "shard-000", "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(segs))
	}

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Records != 50 {
		t.Errorf("replayed %d records across %d segments, want 50", stats.Records, stats.Segments)
	}
	if stats.Segments != len(segs) {
		t.Errorf("stats.Segments = %d, want %d", stats.Segments, len(segs))
	}
	if v := st2.Verdict("app.rot"); v.Channels.Reports.Detections != 50 {
		t.Errorf("Detections = %d, want 50", v.Channels.Reports.Detections)
	}
}

// TestWALMidSegmentCorruption: flipping bytes inside a sealed (non-
// last) segment is corruption, not a torn tail — Open must refuse.
func TestWALMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 256, CheckpointEvery: -1}
	st, _ := mustOpen(t, cfg)
	writeEvents(t, st, "app.bad", 50)
	st.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "shard-000", "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	first := segs[0]
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(cfg); err == nil {
		t.Fatal("Open should refuse a corrupt sealed segment")
	}
}

// TestWALRestartReplayIdentical: everything a store acked before a
// clean close is visible, with identical tallies, after reopen — and
// the dedup window state survives too (resubmits are dups).
func TestWALRestartReplayIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 4}
	st, _ := mustOpen(t, cfg)

	var evs []report.Event
	for a := 0; a < 5; a++ {
		for i := 0; i < 20; i++ {
			evs = append(evs, ev(fmt.Sprintf("app-%d", a), fmt.Sprintf("b%d", i%7), fmt.Sprintf("u%d", i)))
		}
	}
	accepted, _, err := st.Ingest(evs)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	want := make(map[string]int64)
	for a := 0; a < 5; a++ {
		app := fmt.Sprintf("app-%d", a)
		want[app] = st.Verdict(app).Channels.Reports.Detections
	}
	st.Close()

	st2, stats := mustOpen(t, cfg)
	defer st2.Close()
	if stats.Records != int64(accepted) {
		t.Errorf("replayed %d records, want accepted count %d", stats.Records, accepted)
	}
	if stats.TornTails != 0 {
		t.Errorf("TornTails = %d on a clean close, want 0", stats.TornTails)
	}
	for app, n := range want {
		if got := st2.Verdict(app).Channels.Reports.Detections; got != n {
			t.Errorf("Verdict(%s) = %d after restart, want %d", app, got, n)
		}
	}
	// Dedup state was rebuilt: the whole original batch is duplicates.
	accepted2, dups2, err := st2.Ingest(evs)
	if err != nil {
		t.Fatalf("re-Ingest: %v", err)
	}
	if accepted2 != 0 || dups2 != len(evs) {
		t.Errorf("re-Ingest = (%d, %d), want (0, %d)", accepted2, dups2, len(evs))
	}
}
