package baseline

import (
	"math/rand"
	"strings"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/dex"
	"bombdroid/internal/vm"
)

func buildApp(t *testing.T, seed int64) (*appgen.App, *apk.KeyPair) {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: "bl", Seed: seed, TargetLOC: 1500})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(31)
	if err != nil {
		t.Fatal(err)
	}
	return app, key
}

func install(t *testing.T, file *dex.File, key *apk.KeyPair, repack bool) *vm.VM {
	t.Helper()
	pkg, err := apk.Sign(apk.Build("bl", file, apk.Resources{}), key)
	if err != nil {
		t.Fatal(err)
	}
	if repack {
		attacker, err := apk.NewKeyPair(404)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err = apk.Repackage(pkg, attacker, apk.RepackOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func driveAll(t *testing.T, v *vm.VM, app *appgen.App, events int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, init := range v.InitMethods() {
		v.Invoke(init)
	}
	hs := v.Handlers()
	for i := 0; i < events; i++ {
		h := hs[rng.Intn(len(hs))]
		v.Invoke(h, dex.Int64(rng.Int63n(app.Config.ParamDomain)), dex.Int64(rng.Int63n(app.Config.ParamDomain)))
		v.AdvanceIdle(100)
	}
}

func TestObfuscateRoundTrip(t *testing.T) {
	obf := Obfuscate("getPublicKey")
	if strings.Contains(obf, "getPublicKey") {
		t.Error("obfuscation is a no-op")
	}
	// The VM's deobfuscation API must invert it.
	raw := make([]byte, len(obf)/2)
	for i := 0; i < len(raw); i++ {
		var b byte
		for j := 0; j < 2; j++ {
			c := obf[i*2+j]
			switch {
			case c >= '0' && c <= '9':
				b = b<<4 | (c - '0')
			default:
				b = b<<4 | (c - 'a' + 10)
			}
		}
		raw[i] = b ^ ObfKey
	}
	if string(raw) != "getPublicKey" {
		t.Errorf("manual deobfuscation got %q", raw)
	}
}

func TestSSNHidesAPIName(t *testing.T) {
	app, key := buildApp(t, 61)
	res, err := ProtectSSN(app.File, key.PublicKeyHex(), SSNOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("no SSN sites inserted")
	}
	dis := dex.Disassemble(res.File)
	if strings.Contains(dis, "getPublicKey") {
		t.Error("SSN must hide the getPublicKey token from text search")
	}
	if !strings.Contains(dis, "reflectCall") {
		t.Error("reflection call should be present")
	}
}

func TestSSNDetectsEventually(t *testing.T) {
	app, key := buildApp(t, 67)
	res, err := ProtectSSN(app.File, key.PublicKeyHex(), SSNOptions{
		Seed: 2, InvokeProb: 0.25, DelayMs: 1000, Response: vm.RespWarn,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := install(t, res.File, key, true) // repackaged
	driveAll(t, v, app, 400, 3)
	v.AdvanceIdle(5_000)
	if len(v.Responses()) == 0 {
		t.Error("SSN never fired on a repackaged app")
	}
	// And stays silent on the genuine app.
	v2 := install(t, res.File, key, false)
	driveAll(t, v2, app, 400, 3)
	v2.AdvanceIdle(5_000)
	if len(v2.Responses()) != 0 {
		t.Error("SSN false positive")
	}
}

func TestSSNDefeatedByRandHook(t *testing.T) {
	// §2.1 "code instrumentation": force rand() to 0 to make the
	// probabilistic invocation deterministic — every site visit then
	// runs detection, exposing all sites to a debugger.
	app, key := buildApp(t, 71)
	res, err := ProtectSSN(app.File, key.PublicKeyHex(), SSNOptions{
		Seed: 3, InvokeProb: 0.01, DelayMs: 500, Response: vm.RespWarn,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := install(t, res.File, key, true)
	v.Hook(dex.APIRandPercent, func(vm.APICall) (dex.Value, bool, error) {
		return dex.Int64(0), true, nil
	})
	located := 0
	v.Observe(func(call vm.APICall) {
		if call.API == dex.APIGetPublicKey {
			located++
		}
	})
	driveAll(t, v, app, 200, 4)
	if located == 0 {
		t.Error("rand hook should expose every visited SSN site")
	}
}

func TestSSNDefeatedByReflectionCheck(t *testing.T) {
	// §2.1: "by inserting code that checks the reflection call
	// destination, an attacker can reveal and manipulate those calls."
	app, key := buildApp(t, 73)
	res, err := ProtectSSN(app.File, key.PublicKeyHex(), SSNOptions{Seed: 4, InvokeProb: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	v := install(t, res.File, key, true)
	intercepted := 0
	v.Hook(dex.APIReflectCall, func(call vm.APICall) (dex.Value, bool, error) {
		if len(call.Args) > 0 && call.Args[0].Str == "getPublicKey" {
			intercepted++
			// Return the original key: detection suppressed.
			return dex.Str(key.PublicKeyHex()), true, nil
		}
		return dex.Nil(), false, nil
	})
	driveAll(t, v, app, 300, 5)
	v.AdvanceIdle(600_000)
	if intercepted == 0 {
		t.Fatal("reflection destination check saw nothing")
	}
	if len(v.Responses()) != 0 {
		t.Error("manipulated reflection should fully suppress SSN detection")
	}
}

func TestNaiveBombsVisibleToTextSearch(t *testing.T) {
	app, key := buildApp(t, 79)
	res, err := ProtectNaive(app.File, key.PublicKeyHex(), NaiveOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bombs) == 0 {
		t.Fatal("no naive bombs")
	}
	dis := dex.Disassemble(res.File)
	if !strings.Contains(dis, "getPublicKey") {
		t.Error("naive bombs leave getPublicKey in the clear — text search must find it")
	}
}

func TestNaiveBombFires(t *testing.T) {
	app, key := buildApp(t, 83)
	res, err := ProtectNaive(app.File, key.PublicKeyHex(), NaiveOptions{Seed: 6, Response: vm.RespWarn})
	if err != nil {
		t.Fatal(err)
	}
	v := install(t, res.File, key, true)
	driveAll(t, v, app, 2500, 7)
	if len(v.Responses()) == 0 {
		t.Skip("no naive trigger hit in this stream (rare)")
	}
	v2 := install(t, res.File, key, false)
	driveAll(t, v2, app, 2500, 7)
	if len(v2.Responses()) != 0 {
		t.Error("naive bombs false positive")
	}
}

func TestProtectedFilesStillValid(t *testing.T) {
	app, key := buildApp(t, 89)
	ssn, err := ProtectSSN(app.File, key.PublicKeyHex(), SSNOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := dex.ValidateLinked(ssn.File); err != nil {
		t.Error(err)
	}
	naive, err := ProtectNaive(app.File, key.PublicKeyHex(), NaiveOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := dex.ValidateLinked(naive.File); err != nil {
		t.Error(err)
	}
	// The original file is untouched.
	if app.File.InstrCount() == ssn.File.InstrCount() {
		t.Error("SSN inserted nothing?")
	}
}
