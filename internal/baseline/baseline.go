// Package baseline implements the two defenses the paper positions
// BombDroid against:
//
//   - SSN (Luo et al., DSN'16 — paper Listing 1): repackaging
//     detection invoked with low probability, the getPublicKey call
//     hidden behind string obfuscation + reflection, and the response
//     delayed. §2.1 shows it falls to code instrumentation (force
//     rand() to 0), reflection-destination checks, and symbolic
//     execution.
//
//   - Naive logic bombs (paper Listing 2): plain "if (X == c) {
//     detect }" with the payload in cleartext. Text search, forced
//     execution, and symbolic execution all defeat it.
//
// The resilience evaluation runs every attack against all three
// protections; these two must fall exactly where the paper says they
// do.
package baseline

import (
	"encoding/hex"
	"fmt"
	"math/rand"

	"bombdroid/internal/cfg"
	"bombdroid/internal/dex"
	"bombdroid/internal/instrument"
	"bombdroid/internal/vm"
)

// ObfKey is the XOR key SSN obfuscates API names with.
const ObfKey = 0x5A

// Obfuscate XOR-masks a name into the hex form APIDeobfuscate expects.
func Obfuscate(name string) string {
	raw := []byte(name)
	for i := range raw {
		raw[i] ^= ObfKey
	}
	return hex.EncodeToString(raw)
}

// SSNOptions tunes the SSN baseline.
type SSNOptions struct {
	Seed int64
	// InvokeProb is the detection probability per site visit
	// (paper Listing 1: rand() < 0.01).
	InvokeProb float64
	// SiteFrac is the fraction of methods receiving a detection site.
	SiteFrac float64
	// DelayMs postpones the response (SSN delays to confuse analysts).
	DelayMs int64
	// Response fired after the delay.
	Response vm.ResponseKind
}

func (o SSNOptions) withDefaults() SSNOptions {
	if o.InvokeProb == 0 {
		o.InvokeProb = 0.01
	}
	if o.SiteFrac == 0 {
		o.SiteFrac = 0.25
	}
	if o.DelayMs == 0 {
		o.DelayMs = 120_000
	}
	return o
}

// SSNSite records one inserted SSN detection site.
type SSNSite struct {
	Method string
	PC     int
}

// SSNResult reports an SSN protection run.
type SSNResult struct {
	File  *dex.File
	Sites []SSNSite
}

// ProtectSSN inserts Listing-1 detection sites: probabilistic gate,
// obfuscated reflected getPublicKey, delayed response.
func ProtectSSN(file *dex.File, ko string, opts SSNOptions) (*SSNResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	out := file.Clone()
	res := &SSNResult{File: out}
	threshold := int64(opts.InvokeProb * 10_000)
	obf := Obfuscate(dex.APIGetPublicKey.Name())

	for _, m := range out.Methods() {
		if m.IsSynthetic() || rng.Float64() >= opts.SiteFrac {
			continue
		}
		g := cfg.Build(out, m)
		var locs []int
		for _, b := range g.Blocks {
			if !g.InLoop(b.Start) {
				locs = append(locs, b.Start)
			}
		}
		if len(locs) == 0 {
			continue
		}
		loc := locs[rng.Intn(len(locs))]
		base := int32(m.NumRegs)
		m.NumRegs += 10
		seq := ssnSite(out, base, threshold, obf, ko, opts.DelayMs, opts.Response)
		if err := instrument.InsertAt(m, loc, seq); err != nil {
			return nil, fmt.Errorf("baseline: ssn site in %s: %w", m.FullName(), err)
		}
		res.Sites = append(res.Sites, SSNSite{Method: m.FullName(), PC: loc})
	}
	if err := dex.ValidateLinked(out); err != nil {
		return nil, fmt.Errorf("baseline: ssn output invalid: %w", err)
	}
	return res, nil
}

// ssnSite emits Listing 1 in relative-branch form:
//
//	if (rand() < 0.01) {
//	    funName = recoverFunName(obfuscatedStr);
//	    currKey = reflectionCall(funName);
//	    if (currKey != PUBKEY) { /* delayed response */ }
//	}
func ssnSite(f *dex.File, base int32, threshold int64, obf, ko string, delayMs int64, resp vm.ResponseKind) []dex.Instr {
	s := &relSeq{}
	r0 := base // rand
	s.callAPI(r0, dex.APIRandPercent, 0, 0)
	r1 := base + 1
	s.constInt(r1, threshold)
	s.branchEnd(dex.OpIfGe, r0, r1)
	// Deobfuscate the name: args (hexStr, key) in r2,r3.
	r2, r3 := base+2, base+3
	s.constStr(f, r2, obf)
	s.constInt(r3, ObfKey)
	r4 := base + 4
	s.callAPI(r4, dex.APIDeobfuscate, r2, 2)
	// Reflected call.
	r5 := base + 5
	s.callAPI(r5, dex.APIReflectCall, r4, 1)
	// Compare against the embedded PUBKEY.
	r6 := base + 6
	s.constStr(f, r6, ko)
	r7 := base + 7
	s.callAPI(r7, dex.APIStrEquals, r5, 2)
	s.branchEnd(dex.OpIfNez, r7, -1)
	// Delayed response.
	r8, r9 := base+8, base+9
	s.constInt(r8, delayMs)
	s.constInt(r9, int64(resp))
	s.callAPI(-1, dex.APIDelayBomb, r8, 2)
	return s.finish()
}

// NaiveOptions tunes the naive-bomb baseline.
type NaiveOptions struct {
	Seed              int64
	MaxBombsPerMethod int
	Response          vm.ResponseKind
}

// NaiveBomb records one Listing-2 bomb.
type NaiveBomb struct {
	Method string
	PC     int
	Const  dex.Value
}

// NaiveResult reports a naive protection run.
type NaiveResult struct {
	File  *dex.File
	Bombs []NaiveBomb
}

// ProtectNaive builds Listing-2 bombs: at existing qualified
// conditions it inserts "if (X == c) { if key != Ko: respond }" with
// everything in cleartext — the strawman BombDroid's encryption
// replaces.
func ProtectNaive(file *dex.File, ko string, opts NaiveOptions) (*NaiveResult, error) {
	if opts.MaxBombsPerMethod == 0 {
		opts.MaxBombsPerMethod = 2
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	out := file.Clone()
	res := &NaiveResult{File: out}

	for _, m := range out.Methods() {
		if m.IsSynthetic() {
			continue
		}
		qcs := cfg.FindQCs(out, m)
		rng.Shuffle(len(qcs), func(i, j int) { qcs[i], qcs[j] = qcs[j], qcs[i] })
		quota := opts.MaxBombsPerMethod
		var sites []cfg.QC
		for _, q := range qcs {
			if q.InLoop || quota == 0 {
				continue
			}
			// One site per pc; keep the highest pcs first for stable
			// insertion.
			dup := false
			for _, s := range sites {
				if s.CondPC == q.CondPC {
					dup = true
				}
			}
			if dup {
				continue
			}
			sites = append(sites, q)
			quota--
		}
		if len(sites) == 0 {
			continue
		}
		base := int32(m.NumRegs)
		m.NumRegs += 8
		// Apply in descending pc order.
		for i := 0; i < len(sites); i++ {
			for j := i + 1; j < len(sites); j++ {
				if sites[j].CondPC > sites[i].CondPC {
					sites[i], sites[j] = sites[j], sites[i]
				}
			}
		}
		for _, q := range sites {
			seq := naiveSite(out, base, q.Reg, q.Const, ko, opts.Response)
			if err := instrument.InsertAt(m, q.CondPC, seq); err != nil {
				return nil, fmt.Errorf("baseline: naive site in %s: %w", m.FullName(), err)
			}
			res.Bombs = append(res.Bombs, NaiveBomb{Method: m.FullName(), PC: q.CondPC, Const: q.Const})
		}
	}
	if err := dex.ValidateLinked(out); err != nil {
		return nil, fmt.Errorf("baseline: naive output invalid: %w", err)
	}
	return res, nil
}

// naiveSite emits Listing 2 in relative form: the trigger constant and
// the detection call are both in the clear.
func naiveSite(f *dex.File, base, xReg int32, c dex.Value, ko string, resp vm.ResponseKind) []dex.Instr {
	s := &relSeq{}
	r0 := base
	switch c.Kind {
	case dex.KindStr:
		s.constStr(f, r0, c.Str)
		r1 := base + 1
		s.move(r1, xReg)
		s.move(base+2, r0)
		r3 := base + 3
		s.callAPI(r3, dex.APIStrEquals, r1, 2)
		s.branchEnd(dex.OpIfEqz, r3, -1)
	default:
		s.constInt(r0, c.Int)
		s.branchEnd(dex.OpIfNe, xReg, r0)
	}
	r4 := base + 4
	s.callAPI(r4, dex.APIGetPublicKey, 0, 0)
	r5 := base + 5
	s.constStr(f, r5, ko)
	r6 := base + 6
	s.callAPI(r6, dex.APIStrEquals, r4, 2)
	s.branchEnd(dex.OpIfNez, r6, -1)
	switch resp {
	case vm.RespWarn:
		r7 := base + 7
		s.constStr(f, r7, "repackaged")
		s.callAPI(-1, dex.APIWarnUser, r7, 1)
	default:
		s.callAPI(-1, dex.APICrash, 0, 0)
	}
	return s.finish()
}

// relSeq mirrors core's relative-sequence helper (duplicated rather
// than exported: the two packages evolve independently and the helper
// is ten lines).
type relSeq struct {
	ins    []dex.Instr
	endFix []int
}

func (s *relSeq) emit(in dex.Instr) { s.ins = append(s.ins, in) }

func (s *relSeq) constInt(dst int32, v int64) {
	s.emit(dex.Instr{Op: dex.OpConstInt, A: dst, B: -1, C: -1, Imm: v})
}

func (s *relSeq) constStr(f *dex.File, dst int32, str string) {
	s.emit(dex.Instr{Op: dex.OpConstStr, A: dst, B: -1, C: -1, Imm: f.Intern(str)})
}

func (s *relSeq) move(dst, src int32) {
	s.emit(dex.Instr{Op: dex.OpMove, A: dst, B: src, C: -1})
}

func (s *relSeq) callAPI(dst int32, api dex.API, base, argc int32) {
	s.emit(dex.Instr{Op: dex.OpCallAPI, A: dst, B: base, C: argc, Imm: int64(api)})
}

func (s *relSeq) branchEnd(op dex.Op, a, b int32) {
	s.endFix = append(s.endFix, len(s.ins))
	s.emit(dex.Instr{Op: op, A: a, B: b, C: -1})
}

func (s *relSeq) finish() []dex.Instr {
	for _, pc := range s.endFix {
		s.ins[pc].C = int32(len(s.ins))
	}
	return s.ins
}
