package lockbox

import (
	"strings"
	"testing"
	"testing/quick"

	"bombdroid/internal/dex"
)

func TestHashHexShape(t *testing.T) {
	h := HashHex(dex.Int64(0xfff000), "s1")
	if len(h) != 40 {
		t.Fatalf("SHA-1 hex length = %d, want 40", len(h))
	}
	if h != strings.ToLower(h) {
		t.Error("hash should be lowercase hex")
	}
}

// Property: Hash(X|salt) == Hc iff X == c (within a kind), i.e. the
// obfuscated condition is semantically equivalent to the original —
// the paper's correctness requirement for the transformation.
func TestHashEquivalenceProperty(t *testing.T) {
	if err := quick.Check(func(c, x int64, salt string) bool {
		hc := HashHex(dex.Int64(c), salt)
		hx := HashHex(dex.Int64(x), salt)
		return (hx == hc) == (x == c)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(c, x string, salt string) bool {
		hc := HashHex(dex.Str(c), salt)
		hx := HashHex(dex.Str(x), salt)
		return (hx == hc) == (x == c)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSaltChangesEverything(t *testing.T) {
	x := dex.Int64(42)
	if HashHex(x, "a") == HashHex(x, "b") {
		t.Error("different salts must produce different hashes (rainbow-table defence)")
	}
	if string(DeriveKey(x, "a")) == string(DeriveKey(x, "b")) {
		t.Error("different salts must produce different keys")
	}
	if HashHex(x, "a") == "" {
		t.Error("empty hash")
	}
}

func TestHashAndKeyDomainsSeparate(t *testing.T) {
	// Publishing Hc must not reveal key material: the hash and the
	// derived key use separate domains.
	x := dex.Int64(7)
	h := HashHex(x, "s")
	k := DeriveKey(x, "s")
	if strings.Contains(h, string(k)) || strings.HasPrefix(h, string(k)) {
		t.Error("key material leaks into published hash")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := DeriveKey(dex.Str("secret-constant"), "salt9")
	plain := []byte("the repackaging detection payload bytecode")
	sealed, err := Seal(plain, key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(sealed, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(plain) {
		t.Error("round trip mangled payload")
	}
	if strings.Contains(string(sealed), "repackaging") {
		t.Error("plaintext visible in sealed blob")
	}
}

// Property: opening under any key other than the sealing key fails
// with ErrWrongKey — forced execution cannot reveal payload behaviour.
func TestWrongKeyAlwaysFailsProperty(t *testing.T) {
	plain := []byte("payload")
	right := DeriveKey(dex.Int64(1234), "s")
	sealed, err := Seal(plain, right)
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(guess int64, salt string) bool {
		key := DeriveKey(dex.Int64(guess), salt)
		if string(key) == string(right) {
			return true
		}
		_, err := Open(sealed, key)
		return err == ErrWrongKey
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOpenRejectsTruncatedAndTampered(t *testing.T) {
	key := DeriveKey(dex.Int64(5), "s")
	sealed, _ := Seal([]byte("data"), key)
	if _, err := Open(sealed[:10], key); err != ErrTruncated {
		t.Errorf("truncated blob: %v, want ErrTruncated", err)
	}
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x80
		if _, err := Open(mut, key); err == nil {
			// A flip in the nonce or body must break the tag; a flip in
			// the ciphertext tag bytes likewise.
			t.Errorf("bit flip at %d accepted", i)
		}
	}
}

// TestOpenCorruptionTable pins the fail-closed contract for each
// storage-fault class the chaos layer injects: no corruption mode may
// yield plaintext (not even partial), and each maps to an explicit
// error.
func TestOpenCorruptionTable(t *testing.T) {
	key := DeriveKey(dex.Str("constant"), "salty")
	plain := []byte("inner trigger + detection + response bytecode")
	sealed, err := Seal(plain, key)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		wantErr error // nil = any non-nil error accepted
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"below nonce+tag", func(b []byte) []byte { return b[:15] }, ErrTruncated},
		{"exact nonce only", func(b []byte) []byte { return b[:16] }, ErrTruncated},
		{"one byte short of minimum", func(b []byte) []byte { return b[:23] }, ErrTruncated},
		{"body truncated past minimum", func(b []byte) []byte { return b[:len(b)-3] }, ErrWrongKey},
		{"nonce bit flip", func(b []byte) []byte { b[3] ^= 1; return b }, ErrWrongKey},
		{"tag region bit flip", func(b []byte) []byte { b[17] ^= 0x40; return b }, ErrWrongKey},
		{"body bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x08; return b }, ErrWrongKey},
		{"zeroed body", func(b []byte) []byte {
			for i := 16; i < len(b); i++ {
				b[i] = 0
			}
			return b
		}, ErrWrongKey},
		{"doubled blob", func(b []byte) []byte { return append(b, b...) }, ErrWrongKey},
	}
	for _, tc := range cases {
		mut := tc.corrupt(append([]byte(nil), sealed...))
		got, err := Open(mut, key)
		if err == nil {
			t.Errorf("%s: corruption accepted", tc.name)
			continue
		}
		if tc.wantErr != nil && err != tc.wantErr {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
		if got != nil {
			t.Errorf("%s: partial plaintext escaped a failed open", tc.name)
		}
	}
}

func TestSealDeterministic(t *testing.T) {
	key := DeriveKey(dex.Str("c"), "s")
	a, _ := Seal([]byte("p"), key)
	b, _ := Seal([]byte("p"), key)
	if string(a) != string(b) {
		t.Error("sealing must be deterministic for reproducible builds")
	}
}

func TestSealValueOpenValue(t *testing.T) {
	x := dex.Str("mMode=0xfff000")
	sealed, err := SealValue([]byte("payload"), x, "salt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenValue(sealed, x, "salt")
	if err != nil || string(got) != "payload" {
		t.Fatalf("OpenValue: %v %q", err, got)
	}
	if _, err := OpenValue(sealed, dex.Str("other"), "salt"); err != ErrWrongKey {
		t.Errorf("wrong value should fail: %v", err)
	}
	if _, err := OpenValue(sealed, x, "otherSalt"); err != ErrWrongKey {
		t.Errorf("wrong salt should fail: %v", err)
	}
}

func TestBadKeyLength(t *testing.T) {
	if _, err := Seal([]byte("p"), []byte("short")); err == nil {
		t.Error("short key should error")
	}
	sealed, _ := Seal([]byte("p"), DeriveKey(dex.Int64(1), "s"))
	if _, err := Open(sealed, []byte("short")); err == nil {
		t.Error("short key should error on open")
	}
}

func TestEmptyPayload(t *testing.T) {
	key := DeriveKey(dex.Int64(0), "")
	sealed, err := Seal(nil, key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(sealed, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("empty payload round trip failed")
	}
}
