// Package lockbox implements the cryptographic core of a
// cryptographically obfuscated logic bomb (paper §3.2 and §7.4):
//
//	trigger:  Hash(X|salt) == Hc        (SHA-1, per-bomb salt)
//	key:      KDF(X|salt) — "key = Hash(c|S)" transforming a constant
//	          of any size into a uniform 128-bit AES key
//	payload:  AES-128-CTR with an authentication tag, so decrypting
//	          under any wrong key fails loudly instead of yielding
//	          plausible garbage
//
// Both the protector (which seals payloads at instrumentation time)
// and the runtime (which opens them when a trigger fires) use this
// package; neither embeds the key — it exists only while X == c holds
// in a register.
package lockbox

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"bombdroid/internal/dex"
)

// HashHex returns the hex SHA-1 of Repr(x) | 0x1f | salt — the value
// compared against the embedded Hc in an outer trigger condition.
// (The paper calls the function "SHA-128"; its example hash
// da4b9237... is a SHA-1 digest, so SHA-1 it is.)
func HashHex(x dex.Value, salt string) string {
	h := sha1.New()
	h.Write(x.Repr())
	h.Write([]byte{0x1f})
	h.Write([]byte(salt))
	return hex.EncodeToString(h.Sum(nil))
}

// DeriveKey derives the 128-bit payload key from the trigger operand
// and salt. A distinct domain separator keeps the key underivable
// from the published Hc.
func DeriveKey(x dex.Value, salt string) []byte {
	h := sha1.New()
	h.Write([]byte("key|"))
	h.Write(x.Repr())
	h.Write([]byte{0x1f})
	h.Write([]byte(salt))
	return h.Sum(nil)[:16]
}

// tagLen is the length of the integrity tag prepended to the
// plaintext before encryption.
const tagLen = 8

// ErrWrongKey reports that a sealed payload failed to authenticate —
// the observable outcome of every attempt to force, brute, or guess a
// bomb open without the true trigger value.
var ErrWrongKey = errors.New("lockbox: payload failed to authenticate (wrong key)")

// ErrTruncated reports a sealed payload too short to even carry a
// nonce and tag — storage corruption rather than a wrong key. Like
// every other failure mode it yields no plaintext at all: the lockbox
// fails closed.
var ErrTruncated = errors.New("lockbox: sealed payload truncated")

// Seal encrypts plain under key (16 bytes). The plaintext is
// DEFLATE-compressed first (payload bytecode is highly compressible;
// the paper's §8.4 size budget depends on it), then sealed as
// nonce[16] || CTR(tag[8] || deflate(plain)) with
// tag = SHA-256(deflate(plain))[:8]. The nonce is derived from key
// and plaintext, keeping sealing deterministic so protected builds
// are reproducible.
func Seal(plain, key []byte) ([]byte, error) {
	var zbuf bytes.Buffer
	zw, err := flate.NewWriter(&zbuf, flate.BestCompression)
	if err != nil {
		return nil, fmt.Errorf("lockbox: %w", err)
	}
	if _, err := zw.Write(plain); err != nil {
		return nil, fmt.Errorf("lockbox: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("lockbox: %w", err)
	}
	plain = zbuf.Bytes()

	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("lockbox: %w", err)
	}
	sum := sha256.Sum256(plain)
	nonceSrc := sha256.New()
	nonceSrc.Write([]byte("nonce|"))
	nonceSrc.Write(key)
	nonceSrc.Write(sum[:])
	nonce := nonceSrc.Sum(nil)[:aes.BlockSize]

	buf := make([]byte, tagLen+len(plain))
	copy(buf, sum[:tagLen])
	copy(buf[tagLen:], plain)
	out := make([]byte, aes.BlockSize+len(buf))
	copy(out, nonce)
	cipher.NewCTR(block, nonce).XORKeyStream(out[aes.BlockSize:], buf)
	return out, nil
}

// Open decrypts a sealed payload, returning ErrTruncated when the
// blob cannot even carry a nonce and tag, and ErrWrongKey when the
// tag does not authenticate. On any error no partial plaintext is
// ever returned, and the tag comparison is constant-time so a
// brute-force attacker learns nothing from timing.
func Open(sealed, key []byte) ([]byte, error) {
	if len(sealed) < aes.BlockSize+tagLen {
		return nil, ErrTruncated
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("lockbox: %w", err)
	}
	nonce := sealed[:aes.BlockSize]
	buf := make([]byte, len(sealed)-aes.BlockSize)
	cipher.NewCTR(block, nonce).XORKeyStream(buf, sealed[aes.BlockSize:])
	tag, plain := buf[:tagLen], buf[tagLen:]
	sum := sha256.Sum256(plain)
	if subtle.ConstantTimeCompare(sum[:tagLen], tag) != 1 {
		return nil, ErrWrongKey
	}
	out, err := io.ReadAll(flate.NewReader(bytes.NewReader(plain)))
	if err != nil {
		return nil, ErrWrongKey
	}
	return out, nil
}

// SealValue seals plain under the key derived from (x, salt).
func SealValue(plain []byte, x dex.Value, salt string) ([]byte, error) {
	return Seal(plain, DeriveKey(x, salt))
}

// OpenValue opens sealed under the key derived from (x, salt).
func OpenValue(sealed []byte, x dex.Value, salt string) ([]byte, error) {
	return Open(sealed, DeriveKey(x, salt))
}
