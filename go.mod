module bombdroid

go 1.23
