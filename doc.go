// Package bombdroid is a from-scratch Go reproduction of "Resilient
// Decentralized Android Application Repackaging Detection Using Logic
// Bombs" (Zeng, Luo, Qian, Du, Li — CGO 2018).
//
// The repository implements the paper's protection pipeline (BombDroid)
// together with every substrate it depends on: a register-based bytecode
// and runtime standing in for Dalvik/ART, an APK-like signed package
// format, a device/population model, four blackbox fuzzers, a symbolic
// executor, and the full adversary toolbox used in the paper's
// resilience evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record of every table
// and figure.
package bombdroid
