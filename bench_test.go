// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls
// out. Each benchmark reports the experiment's headline numbers as
// custom metrics, so `go test -bench=. -benchmem` doubles as the
// reproduction harness:
//
//	BenchmarkTable3FirstTrigger  avg_sec=…  success_pct=…
//
// Scale is exp.Quick(); run cmd/report -scale full for paper-sized
// workloads.
package bombdroid_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/artifact"
	"bombdroid/internal/appgen"
	"bombdroid/internal/attack"
	"bombdroid/internal/chaos"
	"bombdroid/internal/core"
	"bombdroid/internal/dex"
	"bombdroid/internal/exp"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
	"bombdroid/internal/symexec"
	"bombdroid/internal/vm"
)

func BenchmarkTable1Statics(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(sc)
		if err != nil {
			b.Fatal(err)
		}
		loc := 0
		for _, r := range rows {
			loc += r.AvgLOC
		}
		b.ReportMetric(float64(loc)/float64(len(rows)), "avg_loc")
	}
}

func BenchmarkTable2Injection(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(sc)
		if err != nil {
			b.Fatal(err)
		}
		bombs := 0
		for _, r := range rows {
			bombs += r.Bombs
		}
		b.ReportMetric(float64(bombs)/float64(len(rows)), "avg_bombs")
	}
}

func BenchmarkTable3FirstTrigger(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sc := exp.Quick()
			sc.Workers = workers
			// Warm the Prepare cache so the benchmark measures campaign
			// execution, not the one-time app-preparation pipeline.
			if _, err := exp.Table3(sc); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := exp.Table3(sc)
				if err != nil {
					b.Fatal(err)
				}
				var avg, success, sessions float64
				for _, r := range rows {
					avg += r.AvgSec
					success += float64(r.Success)
					sessions += float64(r.Sessions)
				}
				b.ReportMetric(avg/float64(len(rows)), "avg_sec")
				b.ReportMetric(100*success/sessions, "success_pct")
			}
		})
	}
}

func BenchmarkTable4Fuzzers(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(sc)
		if err != nil {
			b.Fatal(err)
		}
		var monkey, dyno float64
		for _, r := range rows {
			monkey += r.Monkey
			dyno += r.Dynodroid
		}
		b.ReportMetric(monkey/float64(len(rows)), "monkey_pct")
		b.ReportMetric(dyno/float64(len(rows)), "dynodroid_pct")
	}
}

func BenchmarkTable5Overhead(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table5(sc)
		if err != nil {
			b.Fatal(err)
		}
		var oh, size float64
		for _, r := range rows {
			oh += r.OverheadPct
			size += r.SizePct
		}
		b.ReportMetric(oh/float64(len(rows)), "overhead_pct")
		b.ReportMetric(size/float64(len(rows)), "size_pct")
	}
}

func BenchmarkFigure3Entropy(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		series, err := exp.Figure3(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Var == "App.posX" {
				b.ReportMetric(float64(s.Unique), "posX_unique")
			}
			if s.Var == "App.dir" {
				b.ReportMetric(float64(s.Unique), "dir_unique")
			}
		}
	}
}

func BenchmarkFigure4Strength(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure4(sc)
		if err != nil {
			b.Fatal(err)
		}
		var weak, strong int
		for _, r := range rows {
			weak += r.ExistWeak
			strong += r.ExistStrong + r.ArtStrong
		}
		b.ReportMetric(float64(weak), "weak_total")
		b.ReportMetric(float64(strong), "strong_total")
	}
}

func BenchmarkFigure5DynodroidBombs(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		series, err := exp.Figure5(sc)
		if err != nil {
			b.Fatal(err)
		}
		var final float64
		for _, s := range series {
			final += s.FinalPct
		}
		b.ReportMetric(final/float64(len(series)), "final_triggered_pct")
	}
}

func BenchmarkHumanAnalyst(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := exp.HumanAnalystStudy(sc)
		if err != nil {
			b.Fatal(err)
		}
		var pct float64
		for _, r := range rows {
			pct += r.Pct
		}
		b.ReportMetric(pct/float64(len(rows)), "triggered_pct")
	}
}

func BenchmarkFalsePositives(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := exp.FalsePositives(sc, 1)
		if err != nil {
			b.Fatal(err)
		}
		fp := 0
		for _, r := range rows {
			fp += r.Responses
		}
		b.ReportMetric(float64(fp), "false_positives")
	}
}

func BenchmarkCodeSize(b *testing.B) {
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		_, avg, err := exp.CodeSize(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg, "avg_size_increase_pct")
	}
}

func BenchmarkResilienceMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.ResilienceMatrix(7)
		if err != nil {
			b.Fatal(err)
		}
		defeats := 0
		for _, r := range rows {
			if r.Protection == "bombdroid" && r.Defeated {
				defeats++
			}
		}
		b.ReportMetric(float64(defeats), "bombdroid_defeats")
	}
}

// --- Micro-benchmarks of the core machinery ---

func benchApp(b *testing.B) (*appgen.App, *apk.Package, *apk.KeyPair) {
	b.Helper()
	app, err := appgen.Generate(appgen.Config{
		Name: "bench", Seed: 77, TargetLOC: 2000, QCPerMethod: 1.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	key, err := apk.NewKeyPair(9)
	if err != nil {
		b.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("bench", app.File, apk.Resources{Strings: []string{"x"}}), key)
	if err != nil {
		b.Fatal(err)
	}
	return app, pkg, key
}

func BenchmarkProtect(b *testing.B) {
	app, pkg, key := benchApp(b)
	_ = app
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := core.ProtectPackage(pkg, key, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Bombs()), "bombs")
	}
}

func BenchmarkInterpreter(b *testing.B) {
	app, pkg, _ := benchApp(b)
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	handlers := v.Handlers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := handlers[rng.Intn(len(handlers))]
		if _, err := v.Invoke(h, dex.Int64(rng.Int63n(app.Config.ParamDomain)), dex.Int64(rng.Int63n(app.Config.ParamDomain))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvoke is the tight VM-dispatch loop: one handler invoked
// over and over. allocs/op is the headline — the frame free-list and
// the precomputed invoke-resolution table exist to drive it down.
func BenchmarkInvoke(b *testing.B) {
	app, pkg, _ := benchApp(b)
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	handlers := v.Handlers()
	if len(handlers) == 0 {
		b.Fatal("no handlers")
	}
	h := handlers[0]
	x := dex.Int64(3)
	y := dex.Int64(app.Config.ParamDomain / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Invoke(h, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeRef is the same loop on the retained reference
// interpreter (Options.Reference) — the before/after pair for the
// quickening pass, and the denominator bench.sh uses for the
// quickened-vs-reference speedup.
func BenchmarkInvokeRef(b *testing.B) {
	app, pkg, _ := benchApp(b)
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: 1, Reference: true})
	if err != nil {
		b.Fatal(err)
	}
	handlers := v.Handlers()
	if len(handlers) == 0 {
		b.Fatal("no handlers")
	}
	h := handlers[0]
	x := dex.Int64(3)
	y := dex.Int64(app.Config.ParamDomain / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Invoke(h, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeObs is the same loop with the obs layer attached:
// per-opcode counting on every instruction plus the per-invoke
// counter and steps histogram, all buffered VM-locally and published
// on FlushObs — no atomics anywhere on the Invoke path.
// BenchmarkInvoke itself (obs off) must stay flat, because the off
// path is a hoisted nil check per instruction.
//
// Denominator history, so nobody chases a ghost: PR3 measured obs at
// 0.4% of a ~2.7µs dispatch loop. PR7's quickening nearly halved
// that baseline, so the unchanged absolute obs cost read as 11%. PR8
// removed the per-invoke atomics (buffered counter + histogram
// accumulator), leaving only the per-instruction opcode-array
// increment — about 1ns per executed instruction, which against the
// ~1.6µs quickened loop reads as a 3–7% median depending on the run,
// with ±9% run-to-run drift on the shared box (2.7% in the recorded
// BENCH_PR8.json). That residual IS the instrumentation (you
// cannot count every instruction for free); BENCH_PR8.json reports
// the raw median delta and flags whether it sits inside the noise
// band rather than pretending a fixed bar.
func BenchmarkInvokeObs(b *testing.B) {
	app, pkg, _ := benchApp(b)
	reg := obs.NewRegistry()
	v, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: 1, Obs: reg})
	if err != nil {
		b.Fatal(err)
	}
	handlers := v.Handlers()
	if len(handlers) == 0 {
		b.Fatal("no handlers")
	}
	h := handlers[0]
	x := dex.Int64(3)
	y := dex.Int64(app.Config.ParamDomain / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Invoke(h, x, y); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	v.FlushObs()
	if reg.Counter("vm_invokes_total").Value() == 0 {
		b.Fatal("obs bench recorded nothing")
	}
}

func BenchmarkSymbolicExecution(b *testing.B) {
	app, pkg, key := benchApp(b)
	_ = app
	prot, _, err := core.ProtectPackage(pkg, key, core.Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	file, err := prot.DexFile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := symexec.Analyze(file, symexec.Options{Targets: []dex.API{dex.APIDecryptLoad}})
		if len(sum.SolvedHits()) != 0 {
			b.Fatal("G1 violated")
		}
	}
}

func BenchmarkDexCodec(b *testing.B) {
	app, _, _ := benchApp(b)
	data := dex.Encode(app.File)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dex.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationSalt: per-bomb salts vs one global salt — a shared
// salt lets one precomputed table serve every bomb with the same
// constant (duplicate Hc values give it away).
func BenchmarkAblationSalt(b *testing.B) {
	app, pkg, key := benchApp(b)
	_ = app
	for i := 0; i < b.N; i++ {
		dup := func(opts core.Options) float64 {
			_, res, err := core.ProtectPackage(pkg, key, opts)
			if err != nil {
				b.Fatal(err)
			}
			seen := map[string]int{}
			for _, bomb := range res.Bombs {
				hc := bomb.Salt + "|" + bomb.Const.String()
				if opts.GlobalSalt != "" {
					hc = bomb.Const.String()
				}
				seen[hc]++
			}
			dups := 0
			for _, n := range seen {
				if n > 1 {
					dups += n - 1
				}
			}
			return float64(dups)
		}
		b.ReportMetric(dup(core.Options{Seed: 5}), "dup_keys_salted")
		b.ReportMetric(dup(core.Options{Seed: 5, GlobalSalt: "fixed"}), "dup_keys_global")
	}
}

// BenchmarkAblationDoubleTrigger: single- vs double-trigger bombs
// under one virtual hour of Dynodroid in the attacker lab.
func BenchmarkAblationDoubleTrigger(b *testing.B) {
	app, pkg, key := benchApp(b)
	for i := 0; i < b.N; i++ {
		triggered := func(single bool) float64 {
			prot, res, err := core.ProtectPackage(pkg, key, core.Options{Seed: 5, SingleTrigger: single})
			if err != nil {
				b.Fatal(err)
			}
			attacker, err := apk.NewKeyPair(404)
			if err != nil {
				b.Fatal(err)
			}
			pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{})
			if err != nil {
				b.Fatal(err)
			}
			v, err := vm.NewUnverified(pirated, android.EmulatorLab(1)[0], vm.Options{Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			r := fuzz.Run(v, fuzz.NewDynodroid(), app.Config.ParamDomain, fuzz.Options{
				DurationMs:     60 * 60_000,
				Seed:           3,
				HandlerScreens: app.HandlerScreens,
				ScreenField:    app.ScreenField,
				WatchFields:    app.IntFieldRefs,
			})
			total := len(res.RealBombs())
			if total == 0 {
				return 0
			}
			return 100 * float64(len(r.DetectionRuns)) / float64(total)
		}
		b.ReportMetric(triggered(true), "single_trigger_pct")
		b.ReportMetric(triggered(false), "double_trigger_pct")
	}
}

// BenchmarkAblationHotMethods: bombing hot methods vs excluding them —
// the overhead impact of the paper's top-10% exclusion.
func BenchmarkAblationHotMethods(b *testing.B) {
	app, pkg, key := benchApp(b)
	profVM, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: 1, Profile: true})
	if err != nil {
		b.Fatal(err)
	}
	profile, fieldVals := fuzz.Profile(profVM, app.Config.ParamDomain, 2500, app.IntFieldRefs, 1)
	measure := func(hotFrac float64) float64 {
		opts := core.Options{Seed: 5, Profile: profile, FieldValues: fieldVals, HotFrac: hotFrac}
		if hotFrac < 0 {
			opts.Profile = nil // no exclusion at all
			opts.HotFrac = 0
		}
		prot, _, err := core.ProtectPackage(pkg, key, opts)
		if err != nil {
			b.Fatal(err)
		}
		ticks := func(p *apk.Package) int64 {
			v, err := vm.New(p, android.EmulatorLab(1)[0], vm.Options{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			r := fuzz.Run(v, fuzz.NewDynodroid(), app.Config.ParamDomain, fuzz.Options{
				DurationMs: 1 << 40, MaxEvents: 1500, EventGapMs: 250, Seed: 7,
				HandlerScreens: app.HandlerScreens, ScreenField: app.ScreenField,
			})
			return v.NowTicks() - int64(r.Events)*250*vm.TicksPerMilli
		}
		ta := ticks(pkg)
		tb := ticks(prot)
		return 100 * float64(tb-ta) / float64(ta)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(measure(0.10), "overhead_pct_hot_excluded")
		b.ReportMetric(measure(-1), "overhead_pct_no_exclusion")
	}
}

// BenchmarkAblationDeletion: weaving + bogus bombs on vs off, against
// the delete-everything attack — corruption rate of the mutilated app.
func BenchmarkAblationDeletion(b *testing.B) {
	app, pkg, key := benchApp(b)
	corruption := func(noWeave bool) float64 {
		opts := core.Options{Seed: 5, NoWeave: noWeave}
		if noWeave {
			opts.BogusFrac = -1 // disable (withDefaults keeps negatives)
		}
		prot, _, err := core.ProtectPackage(pkg, key, opts)
		if err != nil {
			b.Fatal(err)
		}
		file, err := prot.DexFile()
		if err != nil {
			b.Fatal(err)
		}
		del := attack.DeleteSuspiciousCode(file)
		attacker, err := apk.NewKeyPair(405)
		if err != nil {
			b.Fatal(err)
		}
		broken, err := apk.Sign(apk.Build("bench", del.File, pkg.Res), attacker)
		if err != nil {
			b.Fatal(err)
		}
		// Compare trajectories against the intact protected app.
		rng := rand.New(rand.NewSource(3))
		dev := android.SamplePopulation("u", rng)
		vb, err := vm.New(broken, dev.Clone(), vm.Options{Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		vp, err := vm.New(prot, dev.Clone(), vm.Options{Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		diverged := 0
		const events = 1200
		for i := 0; i < events; i++ {
			h := app.Handlers[rng.Intn(len(app.Handlers))]
			x, y := dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64))
			_, e1 := vb.Invoke(h, x, y)
			_, e2 := vp.Invoke(h, x, y)
			if vm.AbnormalExit(e1) != vm.AbnormalExit(e2) {
				diverged++
				continue
			}
			for _, ref := range app.IntFieldRefs {
				if !vb.Static(ref).Equal(vp.Static(ref)) {
					diverged++
					break
				}
			}
		}
		return 100 * float64(diverged) / float64(events)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(corruption(false), "corruption_pct_woven")
		b.ReportMetric(corruption(true), "corruption_pct_noweave")
	}
}

// BenchmarkAblationAlpha: artificial-QC density vs bombs and size.
func BenchmarkAblationAlpha(b *testing.B) {
	_, pkg, key := benchApp(b)
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0.10, 0.25, 0.50} {
			_, res, err := core.ProtectPackage(pkg, key, core.Options{Seed: 5, Alpha: alpha})
			if err != nil {
				b.Fatal(err)
			}
			switch alpha {
			case 0.10:
				b.ReportMetric(float64(res.Stats.BombsArtificial), "artificial_a10")
			case 0.25:
				b.ReportMetric(float64(res.Stats.BombsArtificial), "artificial_a25")
			default:
				b.ReportMetric(float64(res.Stats.BombsArtificial), "artificial_a50")
			}
		}
	}
}

// BenchmarkReportIngestion: events/sec through the detection-report
// pipeline under a faulted channel (1% drops, 5% delays) — the
// market-side ingestion cost of decentralized detection at scale.
func BenchmarkReportIngestion(b *testing.B) {
	profile := chaos.Profile{
		Name:       "bench",
		DropEvent:  0.01,
		DelayEvent: 0.05, DelayEventMs: 250,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj := chaos.NewInjector(profile, 7)
		sink := report.NewMemorySink()
		pipe := report.NewPipeline(&chaos.FlakySink{Inner: sink, Inj: inj}, report.WithSeed(7))
		const events = 5_000
		now := int64(0)
		for j := 0; j < events; j++ {
			ev := report.Event{
				App:  "bench",
				Bomb: fmt.Sprintf("bomb%d", j%40),
				User: fmt.Sprintf("user%d", j/40),
			}
			if inj.Hit(profile.DelayEvent, "delay") {
				ev.TimeMs = now + inj.DelayMs()
			} else {
				ev.TimeMs = now
			}
			pipe.Submit(ev, ev.TimeMs)
			now += 2
			if j%64 == 0 {
				pipe.Tick(now)
			}
		}
		pipe.Flush(now, now+60_000)
		if got := sink.UniqueKeys(); got != events {
			b.Fatalf("delivered %d unique of %d", got, events)
		}
		if sink.MaxPerKey() != 1 {
			b.Fatal("duplicate delivery under faults")
		}
		b.ReportMetric(float64(events), "events")
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*5_000/elapsed, "events/sec")
	}
}

// --- Staged protection engine (cold vs warm cache) ---

// BenchmarkEngineCold runs the full staged pipeline with no cache —
// every stage executes — and reports per-stage wall time so the
// pipeline's cost profile is part of the benchmark record.
func BenchmarkEngineCold(b *testing.B) {
	_, pkg, _ := benchApp(b)
	prof := core.ProfileConfig{Events: 2500, Domain: 64, Seed: 7}
	stageNs := map[core.StageName]int64{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := &core.Engine{Opts: core.Options{Seed: 5}, Prof: prof}
		p, err := eng.Run(context.Background(), pkg)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range p.Info.Stages {
			stageNs[st.Stage] += st.WallNs
		}
	}
	b.StopTimer()
	for stage, total := range stageNs {
		b.ReportMetric(float64(total)/float64(b.N), string(stage)+"_ns_op")
	}
}

// BenchmarkEngineWarm re-protects the same input against a warmed
// artifact store: profile and analysis are skipped and the run is one
// result-cache hit plus a deep clone. The acceptance bar is a ≥5×
// speedup over BenchmarkEngineCold.
func BenchmarkEngineWarm(b *testing.B) {
	_, pkg, _ := benchApp(b)
	store := artifact.NewStore(256 << 20)
	eng := &core.Engine{
		Opts:  core.Options{Seed: 5},
		Prof:  core.ProfileConfig{Events: 2500, Domain: 64, Seed: 7},
		Cache: store,
	}
	if _, err := eng.Run(context.Background(), pkg); err != nil {
		b.Fatal(err)
	}
	warmup := store.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := eng.Run(context.Background(), pkg)
		if err != nil {
			b.Fatal(err)
		}
		if p.Info.CacheHits == 0 {
			b.Fatal("warm run missed the cache")
		}
	}
	b.StopTimer()
	st := store.Stats()
	hits, misses := st.Hits-warmup.Hits, st.Misses-warmup.Misses
	if total := hits + misses; total > 0 {
		b.ReportMetric(100*float64(hits)/float64(total), "cache_hit_pct")
	}
}
