// Attacker vs. users: the asymmetry the whole design rests on
// (paper observations D1 and D2). The attacker fuzzes the pirated app
// on a handful of emulators for virtual hours and trips almost
// nothing; a population of real users detonates bomb after bomb in
// minutes of ordinary play.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/sim"
	"bombdroid/internal/vm"
)

func main() {
	app, err := appgen.Generate(appgen.Config{Name: "journal", Seed: 21, TargetLOC: 2200, QCPerMethod: 1.2})
	if err != nil {
		log.Fatal(err)
	}
	devKey, err := apk.NewKeyPair(5)
	if err != nil {
		log.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("journal", app.File, apk.Resources{Strings: []string{"New entry"}}), devKey)
	if err != nil {
		log.Fatal(err)
	}
	prot, res, err := core.ProtectPackage(orig, devKey, core.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := apk.NewKeyPair(1337)
	if err != nil {
		log.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, attacker, apk.RepackOptions{NewAuthor: "pirate"})
	if err != nil {
		log.Fatal(err)
	}
	total := len(res.RealBombs())
	fmt.Printf("app carries %d real bombs\n\n", total)

	// The attacker's side: 3 emulator configs × 1 virtual hour of the
	// best fuzzer they have.
	fmt.Println("== attacker lab (3 emulators, 1 virtual hour each, Dynodroid) ==")
	labTriggered := map[string]bool{}
	for i, dev := range android.EmulatorLab(3) {
		v, err := vm.NewUnverified(pirated, dev, vm.Options{Seed: int64(i)})
		if err != nil {
			log.Fatal(err)
		}
		r := fuzz.Run(v, fuzz.NewDynodroid(), app.Config.ParamDomain, fuzz.Options{
			DurationMs:     60 * 60_000,
			Seed:           int64(i) * 71,
			HandlerScreens: app.HandlerScreens,
			ScreenField:    app.ScreenField,
			WatchFields:    app.IntFieldRefs,
		})
		for id := range r.DetectionRuns {
			labTriggered[id] = true
		}
		fmt.Printf("  %-28s outer triggers: %3d, bombs fired: %d\n",
			dev.String(), len(r.OuterSatisfied), len(r.DetectionRuns))
	}
	fmt.Printf("  lab total: %d/%d bombs located (%.1f%%)\n\n",
		len(labTriggered), total, 100*float64(len(labTriggered))/float64(total))

	// The user side: 40 population devices, ~20 minutes of play each.
	fmt.Println("== user population (40 devices, ≤20 min of normal play each) ==")
	rng := rand.New(rand.NewSource(9))
	surf := sim.SurfaceOf(app)
	userTriggered := map[string]bool{}
	detected := 0
	for i := 0; i < 40; i++ {
		dev := android.SamplePopulation(fmt.Sprintf("u%d", i), rng)
		sr, err := sim.RunUserSession(pirated, surf, dev, sim.SessionOptions{
			Seed: int64(i) * 17, StartClockMs: -1, CapMs: 20 * 60_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if sr.Triggered {
			detected++
			if sr.FirstBomb != "" {
				userTriggered[sr.FirstBomb] = true
			}
		}
	}
	fmt.Printf("  sessions with a detonation: %d/40\n", detected)
	fmt.Printf("  distinct bombs detonated by users: %d\n\n", len(userTriggered))

	fmt.Println("the asymmetry: bombs dormant under the attacker's lab fuzzing")
	fmt.Println("detonate under the diversity of real devices and real play.")
}
