// Market response: the decentralized aggregation story from paper §1.
// A pirated copy reaches an alternative market; user devices detect it
// during ordinary use; crashes and freezes drive bad ratings, and
// piracy reports flow back to the original developer, who can request
// a takedown.
package main

import (
	"context"
	"fmt"
	"log"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
	"bombdroid/internal/sim"
)

func main() {
	app, err := appgen.Generate(appgen.Config{Name: "beatbox", Seed: 33, TargetLOC: 2400, QCPerMethod: 1.2})
	if err != nil {
		log.Fatal(err)
	}
	devKey, err := apk.NewKeyPair(8)
	if err != nil {
		log.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("beatbox", app.File, apk.Resources{Strings: []string{"Play"}}), devKey)
	if err != nil {
		log.Fatal(err)
	}
	prot, _, err := core.ProtectPackage(orig, devKey, core.Options{Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	pirate, err := apk.NewKeyPair(4242)
	if err != nil {
		log.Fatal(err)
	}
	pirated, err := apk.Repackage(prot, pirate, apk.RepackOptions{NewAuthor: "FreeAppz"})
	if err != nil {
		log.Fatal(err)
	}

	surf := sim.SurfaceOf(app)
	const downloads = 60
	fmt.Printf("'FreeAppz' uploads a repackaged beatbox; %d users download it\n\n", downloads)
	cr, err := sim.Run(context.Background(), pirated, surf, sim.CampaignOptions{N: downloads, CapMs: 30 * 60_000, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("within the first sessions:\n")
	fmt.Printf("  %d/%d users hit a detonated bomb\n", cr.Successes, cr.Sessions)
	fmt.Printf("  fastest detonation: %.0fs; average: %.0fs\n",
		float64(cr.MinMs)/1000, float64(cr.AvgMs)/1000)
	fmt.Printf("  %d users suffered crashes/freezes/warnings -> 1-star reviews\n", cr.Complaints)
	fmt.Printf("  %d piracy reports reached the original developer\n\n", cr.Reports)

	stars := 5.0 - 4.0*float64(cr.Complaints)/float64(cr.Sessions)
	fmt.Printf("market listing rating collapses to ~%.1f stars\n", stars)
	if cr.Reports > 0 {
		fmt.Println("the developer files a takedown with evidence from the reports;")
		fmt.Println("on Google Play, the Remote Application Removal Feature wipes the")
		fmt.Println("repackaged app from victim devices (paper §1).")
	}

	// Control: the same fleet on the genuine app.
	fmt.Println()
	gc, err := sim.Run(context.Background(), prot, surf, sim.CampaignOptions{N: 20, CapMs: 10 * 60_000, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control (genuine app, 20 users): %d complaints, %d reports — silent as designed\n",
		gc.Complaints, gc.Reports)
}
