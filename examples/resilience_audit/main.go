// Resilience audit: run the paper's §2.1 attack suite against your
// own protected app before shipping it — text search, bomb-site
// recon, symbolic execution, forced execution, slicing, brute force,
// and code deletion — and see what each attacker learns.
package main

import (
	"fmt"
	"log"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/attack"
	"bombdroid/internal/core"
	"bombdroid/internal/dex"
	"bombdroid/internal/symexec"
)

func main() {
	app, err := appgen.Generate(appgen.Config{Name: "audit-me", Seed: 55, TargetLOC: 1600, QCPerMethod: 1.3})
	if err != nil {
		log.Fatal(err)
	}
	devKey, err := apk.NewKeyPair(3)
	if err != nil {
		log.Fatal(err)
	}
	res := apk.Resources{Strings: []string{"hi"}, Author: "dev"}
	orig, err := apk.Sign(apk.Build("audit-me", app.File, res), devKey)
	if err != nil {
		log.Fatal(err)
	}
	prot, protRes, err := core.ProtectPackage(orig, devKey, core.Options{Seed: 55})
	if err != nil {
		log.Fatal(err)
	}
	file, err := prot.DexFile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditing %s: %d real bombs, %d bogus\n\n",
		app.Name, len(protRes.RealBombs()), protRes.Stats.BombsBogus)

	fmt.Println("[1] text search")
	for _, f := range attack.TextSearch(file) {
		fmt.Printf("    %-16s ×%d\n", f.Token, f.Count)
	}
	fmt.Println("    -> plumbing visible, detection logic encrypted; real and bogus sites identical")

	sites := attack.ScanBombSites(file)
	fmt.Printf("\n[2] bomb-site recon: %d sites (salt + Hc public, keys absent)\n", len(sites))

	sum := symexec.Analyze(file, symexec.Options{Targets: []dex.API{dex.APIDecryptLoad}})
	fmt.Printf("\n[3] symbolic execution: %d paths to decryptLoad, %d solved, %d unsolvable\n",
		len(sum.Hits), len(sum.SolvedHits()), len(sum.UnsolvableHits()))

	fe, err := attack.ForcedExecution(file, res, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[4] forced execution: %d branches forced, %d forced-only reveals, %d corrupted runs\n",
		fe.BranchesForced, fe.ForcedOnlyReveals, fe.Corrupted)

	se, err := attack.ExecuteSlices(file, res, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[5] HARVESTER slicing: %d slices executed, %d revealed, %d corrupted\n",
		se.Executed, se.Revealed, se.Corrupted)

	bf := attack.BruteForce(file, attack.BruteForceOptions{IntBudget: 1 << 14})
	weak := 0
	for _, c := range bf.Cracked {
		for _, b := range protRes.Bombs {
			if b.Salt == c.Site.Salt && b.Strength.String() == "weak" {
				weak++
			}
		}
	}
	fmt.Printf("\n[6] brute force (2^14 ints + app dictionary): %d/%d keys cracked (%d were weak booleans)\n",
		len(bf.Cracked), bf.Sites, weak)
	fmt.Println("    -> consider fewer weak (boolean) trigger sites for high-value apps")

	del := attack.DeleteSuspiciousCode(file)
	fmt.Printf("\n[7] deletion attack dry-run: %d sites an attacker would nop out;\n", del.SitesDeleted)
	fmt.Printf("    %d bombs carry woven app code, so the app corrupts without them\n", protRes.Stats.Woven)
}
