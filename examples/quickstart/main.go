// Quickstart: protect an app with logic bombs, repackage it like an
// attacker, and watch a bomb detonate on a user device — the paper's
// whole story in one run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
	"bombdroid/internal/sim"
)

func main() {
	// 1. A developer builds an app…
	app, err := appgen.Generate(appgen.Config{Name: "fishgame", Seed: 7, TargetLOC: 2000, QCPerMethod: 1.2})
	if err != nil {
		log.Fatal(err)
	}
	devKey, err := apk.NewKeyPair(42)
	if err != nil {
		log.Fatal(err)
	}
	original, err := apk.Sign(apk.Build("fishgame", app.File, apk.Resources{
		Strings: []string{"Tap the fish!"}, Author: "honest dev",
	}), devKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d LOC, %d methods\n", app.Name, app.LOC, len(app.File.Methods()))

	// 2. …BombDroid weaves repackaging detection into it…
	protected, res, err := core.ProtectPackage(original, devKey, core.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("protected: %d bombs (%d existing + %d artificial, %d bogus, %d woven)\n",
		st.Bombs(), st.BombsExisting, st.BombsArtificial, st.BombsBogus, st.Woven)

	// 3. …a pirate repackages and re-signs it…
	pirateKey, err := apk.NewKeyPair(666)
	if err != nil {
		log.Fatal(err)
	}
	pirated, err := apk.Repackage(protected, pirateKey, apk.RepackOptions{NewAuthor: "pirate co"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pirated copy verifies: %v (but its public key changed)\n", pirated.Verify() == nil)

	// 4. …and ordinary users detonate the bombs.
	surf := sim.SurfaceOf(app)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		dev := android.SamplePopulation(fmt.Sprintf("user%d", i), rng)
		sr, err := sim.RunUserSession(pirated, surf, dev, sim.SessionOptions{
			Seed: int64(i) * 31, StartClockMs: -1, CapMs: 30 * 60_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case sr.Triggered:
			fmt.Printf("user %d on %s: bomb %s fired after %.1fs",
				i, dev, sr.FirstBomb, float64(sr.TimeToFirstMs)/1000)
			if len(sr.Responses) > 0 {
				fmt.Printf(" -> %s response", sr.Responses[0].Kind)
			}
			fmt.Println()
		default:
			fmt.Printf("user %d on %s: nothing in this session\n", i, dev)
		}
	}

	// 5. Sanity: the genuine app never responds.
	dev := android.SamplePopulation("control", rng)
	sr, err := sim.RunUserSession(protected, surf, dev, sim.SessionOptions{
		Seed: 99, StartClockMs: -1, CapMs: 10 * 60_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genuine app control: %d responses (must be 0)\n", len(sr.Responses))
}
