// Command checktimeline validates a marketd verdict timeline against
// the app's verdict: the timeline JSON must parse, its entries must be
// monotone (event times sorted, cumulative counts strictly
// increasing), structural kinds must sit where the store promises them
// ("first" only at index 0, "threshold" exactly where the count
// reaches the verdict threshold), and the final entry's cumulative
// count must equal the /verdict endpoint's detections (evicted reports
// lose their entry but never their contribution to the counts).
// verify.sh uses it to prove a live daemon's GET
// /v1/apps/{app}/timeline is coherent with GET /v1/apps/{app}/verdict.
//
// Usage: checktimeline timeline.json verdict.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type entry struct {
	AtMs  int64  `json:"at_ms"`
	Count int64  `json:"count"`
	Kind  string `json:"kind"`
}

type timeline struct {
	App             string  `json:"app"`
	Threshold       int     `json:"threshold"`
	Detections      int64   `json:"detections"`
	Repackaged      bool    `json:"repackaged"`
	Evicted         int64   `json:"evicted"`
	TimeToVerdictMs int64   `json:"time_to_verdict_ms"`
	Entries         []entry `json:"entries"`
}

// verdict mirrors the fused market verdict; the timeline is the
// reports channel's history, so every comparison below reads
// channels.reports, never the fused flag (similarity can flag an app
// whose own tally sits under the threshold).
type verdict struct {
	App      string `json:"app"`
	Flagged  bool   `json:"flagged"`
	Channels struct {
		Reports struct {
			Detections int64 `json:"detections"`
			Threshold  int   `json:"threshold"`
			Flagged    bool  `json:"flagged"`
		} `json:"reports"`
	} `json:"channels"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "checktimeline:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: checktimeline timeline.json verdict.json")
	}
	var tl timeline
	if err := readJSON(args[0], &tl); err != nil {
		return err
	}
	var v verdict
	if err := readJSON(args[1], &v); err != nil {
		return err
	}
	if tl.App != v.App {
		return fmt.Errorf("timeline is for %q, verdict for %q", tl.App, v.App)
	}
	if tl.Threshold != v.Channels.Reports.Threshold || tl.Detections != v.Channels.Reports.Detections || tl.Repackaged != v.Channels.Reports.Flagged {
		return fmt.Errorf("timeline header (threshold=%d detections=%d repackaged=%v) disagrees with verdict (%d, %d, %v)",
			tl.Threshold, tl.Detections, tl.Repackaged, v.Channels.Reports.Threshold, v.Channels.Reports.Detections, v.Channels.Reports.Flagged)
	}
	if len(tl.Entries) == 0 {
		if v.Channels.Reports.Detections != 0 {
			return fmt.Errorf("empty timeline but verdict counts %d detections", v.Channels.Reports.Detections)
		}
		fmt.Println("timeline ok: empty, no detections")
		return nil
	}
	for i, e := range tl.Entries {
		if i > 0 {
			prev := tl.Entries[i-1]
			if e.AtMs < prev.AtMs {
				return fmt.Errorf("entry %d not monotone: at_ms %d after %d", i, e.AtMs, prev.AtMs)
			}
			if e.Count <= prev.Count {
				return fmt.Errorf("entry %d not monotone: count %d after %d", i, e.Count, prev.Count)
			}
		}
		// "threshold" marks the crossing (it wins over "first" when the
		// very first report crosses, e.g. threshold 1); "first" marks
		// the earliest entry otherwise; everything else is "report".
		crossing := e.Count >= int64(tl.Threshold) &&
			(i == 0 || tl.Entries[i-1].Count < int64(tl.Threshold))
		want := "report"
		if crossing {
			want = "threshold"
		} else if i == 0 {
			want = "first"
		}
		if e.Kind != want {
			return fmt.Errorf("entry %d (count %d) has kind %q, want %q", i, e.Count, e.Kind, want)
		}
	}
	last := tl.Entries[len(tl.Entries)-1]
	if last.Count != v.Channels.Reports.Detections {
		return fmt.Errorf("final entry count %d != verdict detections %d (evicted %d entries keep their counts)",
			last.Count, v.Channels.Reports.Detections, tl.Evicted)
	}
	if v.Channels.Reports.Flagged && tl.TimeToVerdictMs < 0 {
		return fmt.Errorf("verdict is repackaged but time_to_verdict_ms = %d", tl.TimeToVerdictMs)
	}
	fmt.Printf("timeline ok: %d entries, %d detections, time_to_verdict_ms=%d\n",
		len(tl.Entries), v.Channels.Reports.Detections, tl.TimeToVerdictMs)
	return nil
}

func readJSON(path string, dst any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, dst); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	return nil
}
