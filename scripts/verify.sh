#!/bin/sh
# Full verification: build, vet, race-enabled tests (the metrics-path
# packages run with the obs layer exercised by their own tests), a
# smoke run of cmd/report -metrics proving the JSON snapshot parses,
# batch-protection smokes, a marketd lifecycle smoke (ingest, SIGTERM,
# restart-replay), a verdict-timeline smoke (campaign → monotone
# timeline coherent with /verdict, byte-identical across restart), and
# a marketd crash smoke (kill -9 mid-hose,
# checkpointed recovery, no acked event lost), and a fingerprint smoke
# (batch-protected corpus → fingerprint upload → similarity query →
# fused verdict, byte-identical across restart and on the federated
# router). Tier-1 (ROADMAP.md) is `go build ./... &&
# go test ./...`; this script is the stricter gate the chaos-hardening,
# obs, and market-ingestion work is held to.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./internal/vm/..."
# The quickened interpreter shares mutable state (frame arena, statics
# slots, the global image cache) across sessions; run the VM package
# first and under the race detector so a data race in the hot loop
# fails fast, before the long whole-tree pass.
go test -race ./internal/vm/...

echo "==> differential smoke: quickened vs reference interpreter"
# The differential harness replays the corpus sample, the payload
# suite, malformed files, and random code on both interpreter paths
# and asserts byte-identical results, traces, fault ledgers, and obs
# counters. -count=1 defeats the test cache so the smoke always
# re-executes.
go test -run 'TestDifferential' -count=1 ./internal/vm

echo "==> go test -race ./..."
go test -race ./...

echo "==> smoke: cmd/report -metrics"
# writeMetrics round-trips the file through json.Unmarshal before the
# command exits 0, so a successful run already proves the snapshot
# parses; the grep pins that the layers actually reported in.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
go run ./cmd/report -table 3 -metrics "$SMOKE_DIR/metrics.json" > /dev/null
for key in sim_sessions_total exp_pool_tasks_total sim_trigger_latency_ms vm_op_total; do
	grep -q "$key" "$SMOKE_DIR/metrics.json" || {
		echo "verify: metrics snapshot missing $key" >&2
		exit 1
	}
done

echo "==> smoke: cmd/bombdroid -batch over a 5-app corpus"
CORPUS="$SMOKE_DIR/corpus"
mkdir -p "$CORPUS"
for name in AndroFish Angulo SWJournal Calendar CatLog; do
	go run ./cmd/apkgen -name "$name" -keyseed 1 -out "$CORPUS/$name.apk"
done
go run ./cmd/bombdroid -batch "$CORPUS" -outdir "$SMOKE_DIR/protected" \
	-manifest "$SMOKE_DIR/manifest.json" -keyseed 1 -profile-events 800 > /dev/null
ok_count="$(grep -c '"status": "ok"' "$SMOKE_DIR/manifest.json")"
[ "$ok_count" -eq 5 ] || {
	echo "verify: batch manifest reports $ok_count ok apps, want 5" >&2
	exit 1
}
ls "$SMOKE_DIR"/protected/*.prot.apk > /dev/null

echo "==> smoke: cmd/bombdroid -batch mid-run SIGINT"
# Build once so the signal hits the tool, not `go run`'s wrapper, and
# profile at a scale slow enough (8 apps x 10k events, serial) that
# the interrupt lands mid-corpus. The tool must exit promptly on its
# own and still leave a valid manifest of whatever finished.
go build -o "$SMOKE_DIR/bombdroid" ./cmd/bombdroid
for name in BRouter "Hash Droid" "Binaural Beat"; do
	go run ./cmd/apkgen -name "$name" -keyseed 1 -out "$CORPUS/$name.apk"
done
rm -f "$SMOKE_DIR/manifest.json"
"$SMOKE_DIR/bombdroid" -batch "$CORPUS" -outdir "$SMOKE_DIR/protected" \
	-manifest "$SMOKE_DIR/manifest.json" -keyseed 1 -workers 1 > /dev/null 2>&1 &
BATCH_PID=$!
sleep 2
kill -INT "$BATCH_PID" 2>/dev/null || true
wait "$BATCH_PID" && : || true
[ -f "$SMOKE_DIR/manifest.json" ] || {
	echo "verify: interrupted batch left no manifest" >&2
	exit 1
}
# The partial manifest must be valid JSON naming every corpus member.
go run ./scripts/checkmanifest "$SMOKE_DIR/manifest.json" 8

echo "==> smoke: marketd ingest, SIGTERM, restart replay"
# Start the daemon on an ephemeral port, fire a loadgen batch at it,
# check the verdict and metrics surfaces, SIGTERM it (must seal the
# WAL and report a clean shutdown), then restart over the same data
# dir: the replayed daemon must report every accepted record recovered
# and serve a byte-identical verdict.
MARKET_DATA="$SMOKE_DIR/marketd-data"
go build -o "$SMOKE_DIR/marketd" ./cmd/marketd
go build -o "$SMOKE_DIR/loadgen" ./cmd/loadgen

start_marketd() {
	"$SMOKE_DIR/marketd" -addr 127.0.0.1:0 -data "$MARKET_DATA" \
		-shards 2 -threshold 3 > "$1" 2>&1 &
	MARKETD_PID=$!
	for _ in $(seq 1 100); do
		grep -q 'listening on' "$1" 2>/dev/null && break
		sleep 0.1
	done
	MARKET_ADDR="$(sed -n 's/^marketd: listening on //p' "$1")"
	[ -n "$MARKET_ADDR" ] || {
		echo "verify: marketd never bound:" >&2
		cat "$1" >&2
		exit 1
	}
}

start_marketd "$SMOKE_DIR/marketd1.log"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -events 5000 -batch 250 \
	-workers 2 -run verify > "$SMOKE_DIR/loadgen.json"
grep -q '"accepted": 5000' "$SMOKE_DIR/loadgen.json" || {
	echo "verify: loadgen did not land 5000 accepted events:" >&2
	cat "$SMOKE_DIR/loadgen.json" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -verdict app-0 > "$SMOKE_DIR/verdict1.json"
grep -q '"flagged":true' "$SMOKE_DIR/verdict1.json" || {
	echo "verify: app-0 not flagged after the hose" >&2
	exit 1
}
for fam in market_ingest_events_total market_wal_records_total \
	market_http_requests_total market_commit_batches_total; do
	curl -sf "http://$MARKET_ADDR/metrics" | grep -q "$fam" || {
		echo "verify: marketd /metrics missing $fam" >&2
		exit 1
	}
done
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"
grep -q 'clean shutdown' "$SMOKE_DIR/marketd1.log" || {
	echo "verify: marketd did not shut down cleanly:" >&2
	cat "$SMOKE_DIR/marketd1.log" >&2
	exit 1
}

start_marketd "$SMOKE_DIR/marketd2.log"
grep -q 'recovered 5000 records' "$SMOKE_DIR/marketd2.log" || {
	echo "verify: restart did not replay all accepted records:" >&2
	cat "$SMOKE_DIR/marketd2.log" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -verdict app-0 > "$SMOKE_DIR/verdict2.json"
diff "$SMOKE_DIR/verdict1.json" "$SMOKE_DIR/verdict2.json" || {
	echo "verify: verdict changed across restart" >&2
	exit 1
}
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"

echo "==> smoke: campaign → verdict timeline, restart replays it byte-identical"
# A short detonation campaign against a fresh daemon, then the
# timeline surface: GET /v1/apps/{app}/timeline must be monotone
# (event times sorted, cumulative counts strictly increasing), its
# structural entries must sit where the store promises them, and its
# final entry must agree with GET /v1/apps/{app}/verdict
# (checktimeline holds all of that). A SIGTERM restart over the same
# data dir must then replay to a byte-identical timeline.
MARKET_DATA="$SMOKE_DIR/marketd-timeline-data"
start_marketd "$SMOKE_DIR/marketd-tl1.log"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -campaign AndroFish \
	-sessions 24 -seed 7 > "$SMOKE_DIR/campaign.json"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -timeline AndroFish > "$SMOKE_DIR/timeline1.json"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -verdict AndroFish > "$SMOKE_DIR/verdict-tl.json"
go run ./scripts/checktimeline "$SMOKE_DIR/timeline1.json" "$SMOKE_DIR/verdict-tl.json"
grep -q '"flagged":true' "$SMOKE_DIR/verdict-tl.json" || {
	echo "verify: campaign did not push AndroFish over the threshold:" >&2
	cat "$SMOKE_DIR/campaign.json" >&2
	exit 1
}
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"

start_marketd "$SMOKE_DIR/marketd-tl2.log"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -timeline AndroFish > "$SMOKE_DIR/timeline2.json"
diff "$SMOKE_DIR/timeline1.json" "$SMOKE_DIR/timeline2.json" || {
	echo "verify: timeline changed across restart" >&2
	exit 1
}
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"

echo "==> smoke: marketd kill -9 mid-hose, checkpointed crash recovery"
# Fresh data dir with an aggressive checkpoint cadence. Land hose A
# and let the daemon ack it, kill -9 the daemon while hose B is still
# firing, then restart: every acked hose-A event must still be there
# (re-posting the identical run is pure duplicates) and the verdict
# must survive one more clean restart byte-identical.
MARKET_DATA="$SMOKE_DIR/marketd-crash-data"
start_marketd() {
	"$SMOKE_DIR/marketd" -addr 127.0.0.1:0 -data "$MARKET_DATA" \
		-shards 2 -threshold 3 -checkpoint-every 1000 > "$1" 2>&1 &
	MARKETD_PID=$!
	for _ in $(seq 1 100); do
		grep -q 'listening on' "$1" 2>/dev/null && break
		sleep 0.1
	done
	MARKET_ADDR="$(sed -n 's/^marketd: listening on //p' "$1")"
	[ -n "$MARKET_ADDR" ] || {
		echo "verify: marketd never bound:" >&2
		cat "$1" >&2
		exit 1
	}
}
start_marketd "$SMOKE_DIR/marketd3.log"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -events 5000 -batch 250 \
	-workers 2 -run crashA > "$SMOKE_DIR/loadgenA.json"
grep -q '"accepted": 5000' "$SMOKE_DIR/loadgenA.json" || {
	echo "verify: crash smoke hose A did not land 5000 events" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -events 50000 -batch 100 \
	-workers 2 -run crashB > "$SMOKE_DIR/loadgenB.json" 2>&1 &
HOSE_PID=$!
sleep 1
kill -9 "$MARKETD_PID"
wait "$MARKETD_PID" 2>/dev/null && : || true
wait "$HOSE_PID" && : || true # hose B dies with the daemon; that's the point

start_marketd "$SMOKE_DIR/marketd4.log"
grep -q 'shards from checkpoint' "$SMOKE_DIR/marketd4.log" || {
	echo "verify: crash restart printed no recovery summary:" >&2
	cat "$SMOKE_DIR/marketd4.log" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -events 5000 -batch 250 \
	-workers 2 -run crashA > "$SMOKE_DIR/loadgenA2.json"
grep -q '"accepted": 0' "$SMOKE_DIR/loadgenA2.json" || {
	echo "verify: acked events lost across kill -9 (re-post was not all duplicates):" >&2
	cat "$SMOKE_DIR/loadgenA2.json" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -verdict app-0 > "$SMOKE_DIR/verdict3.json"
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"

start_marketd "$SMOKE_DIR/marketd5.log"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -verdict app-0 > "$SMOKE_DIR/verdict4.json"
diff "$SMOKE_DIR/verdict3.json" "$SMOKE_DIR/verdict4.json" || {
	echo "verify: verdict changed across post-crash restart" >&2
	exit 1
}
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"

echo "==> smoke: fingerprint upload, similarity query, fused verdict across restart"
# The static channel end to end: loadgen -fingerprint unpacks every
# protected apk named by the bombdroid -batch manifest from the earlier
# smoke and uploads its resource digests; -similar asks for weighted-
# Jaccard neighbors; a campaign then flags one app through the reports
# channel and the fused verdict must carry both channels. A SIGTERM
# restart over the same data dir must replay fingerprints and serve the
# similar answer and fused verdict byte-identical.
# The SIGINT smoke left manifest.json partial; re-protect the (now
# 8-app) corpus into a complete manifest for the upload.
"$SMOKE_DIR/bombdroid" -batch "$CORPUS" -outdir "$SMOKE_DIR/protected" \
	-manifest "$SMOKE_DIR/fp-manifest.json" -keyseed 1 -profile-events 800 > /dev/null
MARKET_DATA="$SMOKE_DIR/marketd-fp-data"
start_marketd "$SMOKE_DIR/marketd-fp1.log"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -fingerprint "$SMOKE_DIR/fp-manifest.json" \
	> "$SMOKE_DIR/fp-upload.json"
grep -q '"skipped": 0' "$SMOKE_DIR/fp-upload.json" || {
	echo "verify: fingerprint upload skipped apps:" >&2
	cat "$SMOKE_DIR/fp-upload.json" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -campaign AndroFish \
	-sessions 24 -seed 7 > /dev/null
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -similar AndroFish > "$SMOKE_DIR/similar1.json"
grep -q '"known":true' "$SMOKE_DIR/similar1.json" || {
	echo "verify: similar query does not know AndroFish:" >&2
	cat "$SMOKE_DIR/similar1.json" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -verdict AndroFish > "$SMOKE_DIR/fp-verdict1.json"
grep -q '"flagged":true' "$SMOKE_DIR/fp-verdict1.json" || {
	echo "verify: fused verdict did not flag AndroFish" >&2
	exit 1
}
grep -q '"similarity"' "$SMOKE_DIR/fp-verdict1.json" || {
	echo "verify: fused verdict carries no similarity channel" >&2
	exit 1
}
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"

start_marketd "$SMOKE_DIR/marketd-fp2.log"
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -similar AndroFish > "$SMOKE_DIR/similar2.json"
diff "$SMOKE_DIR/similar1.json" "$SMOKE_DIR/similar2.json" || {
	echo "verify: similar answer changed across restart" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$MARKET_ADDR" -verdict AndroFish > "$SMOKE_DIR/fp-verdict2.json"
diff "$SMOKE_DIR/fp-verdict1.json" "$SMOKE_DIR/fp-verdict2.json" || {
	echo "verify: fused verdict changed across restart" >&2
	exit 1
}
kill -TERM "$MARKETD_PID"
wait "$MARKETD_PID"

echo "==> smoke: 3-node cluster + router, federated reads byte-identical to a single node"
# Three partial-range nodes tiling the 256-slot key space, a -router
# daemon fanning out over them, and a standalone full-range reference
# daemon. The same deterministic hose (fixed -run label) goes into
# both; the federated /verdict and /timeline through the router must
# then be byte-identical to the reference's. Finally one node is
# SIGTERM-restarted over its own data dir (same flags, same port — the
# pinned range must accept the restart) and the federated verdict must
# not change.
CLUSTER_DIR="$SMOKE_DIR/cluster"
mkdir -p "$CLUSTER_DIR"

start_node() { # $1 log, $2 data dir, $3 node id, $4 range, $5 addr
	"$SMOKE_DIR/marketd" -addr "$5" -data "$2" -shards 2 -threshold 3 \
		-node-id "$3" -slots 256 -shard-range "$4" > "$1" 2>&1 &
	NODE_PID=$!
	for _ in $(seq 1 100); do
		grep -q 'listening on' "$1" 2>/dev/null && break
		sleep 0.1
	done
	NODE_ADDR="$(sed -n 's/^marketd: listening on //p' "$1")"
	[ -n "$NODE_ADDR" ] || {
		echo "verify: cluster node $3 never bound:" >&2
		cat "$1" >&2
		exit 1
	}
}

start_node "$CLUSTER_DIR/n0.log" "$CLUSTER_DIR/n0" n0 0:86 127.0.0.1:0
N0_PID=$NODE_PID N0=$NODE_ADDR
start_node "$CLUSTER_DIR/n1.log" "$CLUSTER_DIR/n1" n1 86:171 127.0.0.1:0
N1_PID=$NODE_PID N1=$NODE_ADDR
start_node "$CLUSTER_DIR/n2.log" "$CLUSTER_DIR/n2" n2 171:256 127.0.0.1:0
N2_PID=$NODE_PID N2=$NODE_ADDR

"$SMOKE_DIR/marketd" -router -addr 127.0.0.1:0 \
	-nodes "http://$N0,http://$N1,http://$N2" > "$CLUSTER_DIR/router.log" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
	grep -q 'router listening on' "$CLUSTER_DIR/router.log" 2>/dev/null && break
	sleep 0.1
done
ROUTER_ADDR="$(sed -n 's/^marketd: router listening on //p' "$CLUSTER_DIR/router.log")"
[ -n "$ROUTER_ADDR" ] || {
	echo "verify: router never bound:" >&2
	cat "$CLUSTER_DIR/router.log" >&2
	exit 1
}

MARKET_DATA="$CLUSTER_DIR/reference-data"
start_marketd "$CLUSTER_DIR/reference.log"
REF_ADDR=$MARKET_ADDR REF_PID=$MARKETD_PID

"$SMOKE_DIR/loadgen" -url "http://$ROUTER_ADDR" -events 6000 -batch 200 \
	-workers 2 -run fed > "$CLUSTER_DIR/hose-cluster.json"
grep -q '"accepted": 6000' "$CLUSTER_DIR/hose-cluster.json" || {
	echo "verify: cluster hose did not land 6000 accepted events:" >&2
	cat "$CLUSTER_DIR/hose-cluster.json" >&2
	exit 1
}
"$SMOKE_DIR/loadgen" -url "http://$REF_ADDR" -events 6000 -batch 200 \
	-workers 2 -run fed > "$CLUSTER_DIR/hose-ref.json"

for app in app-0 app-7 app-63; do
	"$SMOKE_DIR/loadgen" -url "http://$ROUTER_ADDR" -verdict "$app" > "$CLUSTER_DIR/fed-verdict-$app.json"
	"$SMOKE_DIR/loadgen" -url "http://$REF_ADDR" -verdict "$app" > "$CLUSTER_DIR/ref-verdict-$app.json"
	diff "$CLUSTER_DIR/fed-verdict-$app.json" "$CLUSTER_DIR/ref-verdict-$app.json" || {
		echo "verify: federated verdict for $app differs from the single-node reference" >&2
		exit 1
	}
	"$SMOKE_DIR/loadgen" -url "http://$ROUTER_ADDR" -timeline "$app" > "$CLUSTER_DIR/fed-timeline-$app.json"
	"$SMOKE_DIR/loadgen" -url "http://$REF_ADDR" -timeline "$app" > "$CLUSTER_DIR/ref-timeline-$app.json"
	diff "$CLUSTER_DIR/fed-timeline-$app.json" "$CLUSTER_DIR/ref-timeline-$app.json" || {
		echo "verify: federated timeline for $app differs from the single-node reference" >&2
		exit 1
	}
done

# Fingerprints through the router: the same batch-manifest corpus goes
# into the federated front and the full-range reference; the /similar
# answer and the fused /verdict must be byte-identical.
"$SMOKE_DIR/loadgen" -url "http://$ROUTER_ADDR" -fingerprint "$SMOKE_DIR/fp-manifest.json" > /dev/null
"$SMOKE_DIR/loadgen" -url "http://$REF_ADDR" -fingerprint "$SMOKE_DIR/fp-manifest.json" > /dev/null
for app in AndroFish Angulo; do
	"$SMOKE_DIR/loadgen" -url "http://$ROUTER_ADDR" -similar "$app" > "$CLUSTER_DIR/fed-similar-$app.json"
	"$SMOKE_DIR/loadgen" -url "http://$REF_ADDR" -similar "$app" > "$CLUSTER_DIR/ref-similar-$app.json"
	diff "$CLUSTER_DIR/fed-similar-$app.json" "$CLUSTER_DIR/ref-similar-$app.json" || {
		echo "verify: federated similar for $app differs from the single-node reference" >&2
		exit 1
	}
	"$SMOKE_DIR/loadgen" -url "http://$ROUTER_ADDR" -verdict "$app" > "$CLUSTER_DIR/fed-fused-$app.json"
	"$SMOKE_DIR/loadgen" -url "http://$REF_ADDR" -verdict "$app" > "$CLUSTER_DIR/ref-fused-$app.json"
	diff "$CLUSTER_DIR/fed-fused-$app.json" "$CLUSTER_DIR/ref-fused-$app.json" || {
		echo "verify: federated fused verdict for $app differs from the single-node reference" >&2
		exit 1
	}
done

# Node restart: SIGTERM n1, restart it on the same port over the same
# data dir (meta.json pins its range — matching flags must be accepted),
# and the federated verdict must come back unchanged.
kill -TERM "$N1_PID"
wait "$N1_PID"
grep -q 'clean shutdown' "$CLUSTER_DIR/n1.log" || {
	echo "verify: cluster node n1 did not shut down cleanly:" >&2
	cat "$CLUSTER_DIR/n1.log" >&2
	exit 1
}
start_node "$CLUSTER_DIR/n1-restart.log" "$CLUSTER_DIR/n1" n1 86:171 "$N1"
N1_PID=$NODE_PID
"$SMOKE_DIR/loadgen" -url "http://$ROUTER_ADDR" -verdict app-0 > "$CLUSTER_DIR/fed-verdict-restart.json"
diff "$CLUSTER_DIR/fed-verdict-app-0.json" "$CLUSTER_DIR/fed-verdict-restart.json" || {
	echo "verify: federated verdict changed after a node restart" >&2
	exit 1
}

kill -TERM "$ROUTER_PID" "$N0_PID" "$N1_PID" "$N2_PID" "$REF_PID"
wait "$ROUTER_PID" "$N0_PID" "$N1_PID" "$N2_PID" "$REF_PID"

echo "verify: OK"
