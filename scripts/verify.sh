#!/bin/sh
# Full verification: build, vet, race-enabled tests (the metrics-path
# packages run with the obs layer exercised by their own tests), and a
# smoke run of cmd/report -metrics proving the JSON snapshot parses.
# Tier-1 (ROADMAP.md) is `go build ./... && go test ./...`; this script
# is the stricter gate the chaos-hardening and obs work is held to.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> smoke: cmd/report -metrics"
# writeMetrics round-trips the file through json.Unmarshal before the
# command exits 0, so a successful run already proves the snapshot
# parses; the grep pins that the layers actually reported in.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
go run ./cmd/report -table 3 -metrics "$SMOKE_DIR/metrics.json" > /dev/null
for key in sim_sessions_total exp_pool_tasks_total sim_trigger_latency_ms vm_op_total; do
	grep -q "$key" "$SMOKE_DIR/metrics.json" || {
		echo "verify: metrics snapshot missing $key" >&2
		exit 1
	}
done

echo "==> smoke: cmd/bombdroid -batch over a 5-app corpus"
CORPUS="$SMOKE_DIR/corpus"
mkdir -p "$CORPUS"
for name in AndroFish Angulo SWJournal Calendar CatLog; do
	go run ./cmd/apkgen -name "$name" -keyseed 1 -out "$CORPUS/$name.apk"
done
go run ./cmd/bombdroid -batch "$CORPUS" -outdir "$SMOKE_DIR/protected" \
	-manifest "$SMOKE_DIR/manifest.json" -keyseed 1 -profile-events 800 > /dev/null
ok_count="$(grep -c '"status": "ok"' "$SMOKE_DIR/manifest.json")"
[ "$ok_count" -eq 5 ] || {
	echo "verify: batch manifest reports $ok_count ok apps, want 5" >&2
	exit 1
}
ls "$SMOKE_DIR"/protected/*.prot.apk > /dev/null

echo "==> smoke: cmd/bombdroid -batch mid-run SIGINT"
# Build once so the signal hits the tool, not `go run`'s wrapper, and
# profile at a scale slow enough (8 apps x 10k events, serial) that
# the interrupt lands mid-corpus. The tool must exit promptly on its
# own and still leave a valid manifest of whatever finished.
go build -o "$SMOKE_DIR/bombdroid" ./cmd/bombdroid
for name in BRouter "Hash Droid" "Binaural Beat"; do
	go run ./cmd/apkgen -name "$name" -keyseed 1 -out "$CORPUS/$name.apk"
done
rm -f "$SMOKE_DIR/manifest.json"
"$SMOKE_DIR/bombdroid" -batch "$CORPUS" -outdir "$SMOKE_DIR/protected" \
	-manifest "$SMOKE_DIR/manifest.json" -keyseed 1 -workers 1 > /dev/null 2>&1 &
BATCH_PID=$!
sleep 2
kill -INT "$BATCH_PID" 2>/dev/null || true
wait "$BATCH_PID" && : || true
[ -f "$SMOKE_DIR/manifest.json" ] || {
	echo "verify: interrupted batch left no manifest" >&2
	exit 1
}
# The partial manifest must be valid JSON naming every corpus member.
go run ./scripts/checkmanifest "$SMOKE_DIR/manifest.json" 8

echo "verify: OK"
