#!/bin/sh
# Full verification: build, vet, race-enabled tests (the metrics-path
# packages run with the obs layer exercised by their own tests), and a
# smoke run of cmd/report -metrics proving the JSON snapshot parses.
# Tier-1 (ROADMAP.md) is `go build ./... && go test ./...`; this script
# is the stricter gate the chaos-hardening and obs work is held to.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> smoke: cmd/report -metrics"
# writeMetrics round-trips the file through json.Unmarshal before the
# command exits 0, so a successful run already proves the snapshot
# parses; the grep pins that the layers actually reported in.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
go run ./cmd/report -table 3 -metrics "$SMOKE_DIR/metrics.json" > /dev/null
for key in sim_sessions_total exp_pool_tasks_total sim_trigger_latency_ms vm_op_total; do
	grep -q "$key" "$SMOKE_DIR/metrics.json" || {
		echo "verify: metrics snapshot missing $key" >&2
		exit 1
	}
done

echo "verify: OK"
