#!/bin/sh
# Full verification: build, vet, and race-enabled tests.
# Tier-1 (ROADMAP.md) is `go build ./... && go test ./...`; this script
# is the stricter gate the chaos-hardening work is held to.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: OK"
