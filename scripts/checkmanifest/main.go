// Command checkmanifest validates a cmd/bombdroid batch manifest:
// the file must parse as JSON, name the expected number of apps, and
// give every app a known status. verify.sh uses it to prove that an
// interrupted batch still writes a well-formed partial manifest.
//
// Usage: checkmanifest manifest.json [expected-app-count]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "checkmanifest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: checkmanifest manifest.json [expected-app-count]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var m struct {
		Apps []struct {
			App    string `json:"app"`
			Status string `json:"status"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", args[0], err)
	}
	if len(args) > 1 {
		want, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		if len(m.Apps) != want {
			return fmt.Errorf("manifest has %d apps, want %d", len(m.Apps), want)
		}
	}
	for _, a := range m.Apps {
		switch a.Status {
		case "ok", "error", "cancelled":
		default:
			return fmt.Errorf("app %q has unknown status %q", a.App, a.Status)
		}
	}
	fmt.Printf("manifest ok: %d apps\n", len(m.Apps))
	return nil
}
