#!/bin/sh
# Runs the PR's perf benchmarks and writes BENCH_PR3.json.
#
#   scripts/bench.sh [benchtime]
#
# Stable schema: BENCH_PR3.json repeats every BENCH_PR2.json key
# (parallel campaign path at workers=1 vs 8, VM dispatch hot path)
# and adds the obs layer's overhead record: invoke_obs_ns_op plus
# obs_overhead_pct, the relative cost of running BenchmarkInvoke with
# per-opcode counting and the per-invoke histogram attached. The
# acceptance bar is ≤5%; the obs-off path must stay within noise of
# the PR2 baseline because it is a single nil check per instruction.
# Speedup is reported honestly for whatever machine this runs on —
# on a single-core box workers=8 can only match workers=1, never beat
# it, which is why the core count is part of the record.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT=BENCH_PR3.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
	-bench 'BenchmarkTable3FirstTrigger|BenchmarkInvoke$|BenchmarkInvokeObs$' \
	-benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v cores="$(nproc 2>/dev/null || echo 1)" '
function metric(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($i ~ name "$") return $(i-1)
	return ""
}
/BenchmarkTable3FirstTrigger\/workers=1/  { w1 = metric("ns\\/op"); w1a = metric("allocs\\/op") }
/BenchmarkTable3FirstTrigger\/workers=8/  { w8 = metric("ns\\/op"); w8a = metric("allocs\\/op") }
/^BenchmarkInvokeObs/ { obs = metric("ns\\/op"); obsa = metric("allocs\\/op"); next }
/^BenchmarkInvoke/ { inv = metric("ns\\/op"); invb = metric("B\\/op"); inva = metric("allocs\\/op") }
END {
	printf "{\n"
	printf "  \"bench\": \"PR3 unified metrics/tracing layer\",\n"
	printf "  \"cores\": %d,\n", cores
	printf "  \"table3_workers1_ns_op\": %s,\n", (w1 == "" ? "null" : w1)
	printf "  \"table3_workers8_ns_op\": %s,\n", (w8 == "" ? "null" : w8)
	printf "  \"table3_speedup_8v1\": %s,\n", (w1 == "" || w8 == "" || w8 == 0 ? "null" : sprintf("%.2f", w1 / w8))
	printf "  \"table3_workers1_allocs_op\": %s,\n", (w1a == "" ? "null" : w1a)
	printf "  \"table3_workers8_allocs_op\": %s,\n", (w8a == "" ? "null" : w8a)
	printf "  \"invoke_ns_op\": %s,\n", (inv == "" ? "null" : inv)
	printf "  \"invoke_bytes_op\": %s,\n", (invb == "" ? "null" : invb)
	printf "  \"invoke_allocs_op\": %s,\n", (inva == "" ? "null" : inva)
	printf "  \"invoke_obs_ns_op\": %s,\n", (obs == "" ? "null" : obs)
	printf "  \"invoke_obs_allocs_op\": %s,\n", (obsa == "" ? "null" : obsa)
	printf "  \"obs_overhead_pct\": %s\n", (inv == "" || obs == "" || inv == 0 ? "null" : sprintf("%.1f", (obs - inv) * 100.0 / inv))
	printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
