#!/bin/sh
# Runs the PR's perf benchmarks and writes BENCH_PR6.json.
#
#   scripts/bench.sh [benchtime]
#
# Stable schema: BENCH_PR6.json repeats every BENCH_PR5.json key
# (parallel campaign path at workers=1 vs 8, VM dispatch hot path, obs
# overhead) and adds the staged protection engine's record: cold-path
# ns/op with its per-stage breakdown, warm-path ns/op against a hot
# artifact cache, the warm cache hit rate, and protect_warm_speedup —
# the acceptance bar is a ≥5× cold-over-warm ratio, since a warm
# re-protection skips the profile and analysis stages entirely.
# Speedup is reported honestly for whatever machine this runs on —
# on a single-core box workers=8 can only match workers=1, never beat
# it, which is why the core count is part of the record.
#
# PR5 added the marketd ingestion record — sustained events/sec and
# p99 batch latency through the full HTTP → shard → WAL stack, and the
# WAL replay (crash recovery) rate. The acceptance bar is ≥100k
# events/sec through BenchmarkMarketIngestHTTP.
#
# New in PR6: the checkpointed restart record — milliseconds to reopen
# a 120k-event store by full WAL replay (restart_replay_full_ms, the
# PR-5 behaviour) vs restoring the shutdown checkpoint and replaying
# an empty tail (restart_replay_checkpoint_ms). The acceptance bar is
# restart_speedup ≥ 10.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT=BENCH_PR6.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
	-bench 'BenchmarkTable3FirstTrigger|BenchmarkInvoke$|BenchmarkInvokeObs$|BenchmarkEngineCold$|BenchmarkEngineWarm$' \
	-benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

go test -run '^$' \
	-bench 'BenchmarkMarketIngestHTTP$|BenchmarkWALReplay$' \
	-benchmem -benchtime "$BENCHTIME" ./internal/market | tee -a "$RAW"

# The restart pair seeds a 120k-event store per benchmark, so a fixed
# iteration count keeps the seeding cost bounded while still averaging
# a handful of reopens.
go test -run '^$' \
	-bench 'BenchmarkRestartReplayFull$|BenchmarkRestartReplayCheckpoint$' \
	-benchtime 5x ./internal/market | tee -a "$RAW"

awk -v cores="$(nproc 2>/dev/null || echo 1)" '
function metric(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($i ~ name "$") return $(i-1)
	return ""
}
/BenchmarkTable3FirstTrigger\/workers=1/  { w1 = metric("ns\\/op"); w1a = metric("allocs\\/op") }
/BenchmarkTable3FirstTrigger\/workers=8/  { w8 = metric("ns\\/op"); w8a = metric("allocs\\/op") }
/^BenchmarkInvokeObs/ { obs = metric("ns\\/op"); obsa = metric("allocs\\/op"); next }
/^BenchmarkInvoke/ { inv = metric("ns\\/op"); invb = metric("B\\/op"); inva = metric("allocs\\/op") }
/^BenchmarkEngineCold/ {
	cold = metric("ns\\/op")
	s_unpack = metric("unpack_ns_op"); s_profile = metric("profile_ns_op")
	s_analyze = metric("analyze_ns_op"); s_construct = metric("construct_ns_op")
	s_stego = metric("stego_ns_op"); s_validate = metric("validate_ns_op")
	s_repack = metric("repack_ns_op")
}
/^BenchmarkEngineWarm/ { warm = metric("ns\\/op"); hitpct = metric("cache_hit_pct") }
/^BenchmarkMarketIngestHTTP/ { ing = metric("events_sec"); ingp99 = metric("p99_ms") }
/^BenchmarkWALReplay/ { walrep = metric("events_sec") }
/^BenchmarkRestartReplayFull/ { rfull = metric("ms_restart") }
/^BenchmarkRestartReplayCheckpoint/ { rckpt = metric("ms_restart") }
END {
	printf "{\n"
	printf "  \"bench\": \"PR6 crash-consistent checkpointing for marketd\",\n"
	printf "  \"cores\": %d,\n", cores
	printf "  \"table3_workers1_ns_op\": %s,\n", (w1 == "" ? "null" : w1)
	printf "  \"table3_workers8_ns_op\": %s,\n", (w8 == "" ? "null" : w8)
	printf "  \"table3_speedup_8v1\": %s,\n", (w1 == "" || w8 == "" || w8 == 0 ? "null" : sprintf("%.2f", w1 / w8))
	printf "  \"table3_workers1_allocs_op\": %s,\n", (w1a == "" ? "null" : w1a)
	printf "  \"table3_workers8_allocs_op\": %s,\n", (w8a == "" ? "null" : w8a)
	printf "  \"invoke_ns_op\": %s,\n", (inv == "" ? "null" : inv)
	printf "  \"invoke_bytes_op\": %s,\n", (invb == "" ? "null" : invb)
	printf "  \"invoke_allocs_op\": %s,\n", (inva == "" ? "null" : inva)
	printf "  \"invoke_obs_ns_op\": %s,\n", (obs == "" ? "null" : obs)
	printf "  \"invoke_obs_allocs_op\": %s,\n", (obsa == "" ? "null" : obsa)
	printf "  \"obs_overhead_pct\": %s,\n", (inv == "" || obs == "" || inv == 0 ? "null" : sprintf("%.1f", (obs - inv) * 100.0 / inv))
	printf "  \"protect_cold_ns_op\": %s,\n", (cold == "" ? "null" : cold)
	printf "  \"protect_warm_ns_op\": %s,\n", (warm == "" ? "null" : warm)
	printf "  \"protect_warm_speedup\": %s,\n", (cold == "" || warm == "" || warm == 0 ? "null" : sprintf("%.2f", cold / warm))
	printf "  \"protect_warm_cache_hit_pct\": %s,\n", (hitpct == "" ? "null" : hitpct)
	printf "  \"stage_unpack_ns\": %s,\n", (s_unpack == "" ? "null" : s_unpack)
	printf "  \"stage_profile_ns\": %s,\n", (s_profile == "" ? "null" : s_profile)
	printf "  \"stage_analyze_ns\": %s,\n", (s_analyze == "" ? "null" : s_analyze)
	printf "  \"stage_construct_ns\": %s,\n", (s_construct == "" ? "null" : s_construct)
	printf "  \"stage_stego_ns\": %s,\n", (s_stego == "" ? "null" : s_stego)
	printf "  \"stage_validate_ns\": %s,\n", (s_validate == "" ? "null" : s_validate)
	printf "  \"stage_repack_ns\": %s,\n", (s_repack == "" ? "null" : s_repack)
	printf "  \"market_ingest_events_per_sec\": %s,\n", (ing == "" ? "null" : ing)
	printf "  \"market_ingest_p99_ms\": %s,\n", (ingp99 == "" ? "null" : ingp99)
	printf "  \"market_wal_replay_events_per_sec\": %s,\n", (walrep == "" ? "null" : walrep)
	printf "  \"restart_replay_full_ms\": %s,\n", (rfull == "" ? "null" : rfull)
	printf "  \"restart_replay_checkpoint_ms\": %s,\n", (rckpt == "" ? "null" : rckpt)
	printf "  \"restart_speedup\": %s\n", (rfull == "" || rckpt == "" || rckpt == 0 ? "null" : sprintf("%.2f", rfull / rckpt))
	printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
