#!/bin/sh
# Runs the PR's perf benchmarks and writes BENCH_PR10.json.
#
#   scripts/bench.sh [benchtime] [count]
#
# Stable schema: BENCH_PR10.json repeats every BENCH_PR9.json key and
# adds the fingerprint-similarity record:
#
#   - fingerprint_ingest_per_sec — PutFingerprint throughput
#     (canonicalize, WAL append, inverted-index update);
#   - similar_query_ns_op — one top-K weighted-Jaccard lookup against
#     the 4096-app corpus, with similar_query_1k_ns_op the 1024-app
#     point and similar_query_corpus_ratio their quotient: a naive
#     all-pairs scan would pay ~4.0x for the 4x corpus, so a ratio
#     well under 4 is the sub-quadratic acceptance evidence;
#   - fused_verdict_ns_op — one two-channel Store.Verdict (reports
#     tally plus the ranked-neighbor similarity walk).
#
# PR9 record, for context: BENCH_PR9.json repeats every BENCH_PR8.json key
# (Table 3 campaign, VM dispatch hot path, obs overhead, staged
# protection engine, marketd ingestion, tracing/timeline and restart
# records) and adds the multi-node cluster record:
#
#   - cluster_events_per_sec — routed ingest through a 3-node HTTP
#     cluster (partitioning, concurrent fan-out, per-node acks);
#     acceptance is within 20% of the single-node
#     market_ingest_events_per_sec, reported alongside as
#     cluster_vs_single_node_pct;
#   - router_fanout_p99_ms — p99 of the router's receive→all-acks
#     window from the cluster_router_fanout_us histogram;
#   - federated_verdict_ns_op / federated_timeline_ns_op — one
#     federated read: concurrent per-node fetches plus the commutative
#     merge (verdict sum, timeline k-way merge over raw parts).
#
# PR8 record, for context:
#
#   - trace_overhead_pct — events/sec lost when every ingest batch
#     carries an obs.TraceHeader (BenchmarkMarketIngestHTTPTraced vs
#     the untraced run, interleaved medians; acceptance ≤ 3%);
#   - e2e_p99_ms — the traced client's p99 generation→durable-ack
#     round trip, with srv_flush_p99_ms the daemon-side slice of it
#     (receive→post-WAL-flush ack, via obs.ServerTimingHeader);
#   - time_to_verdict_ms — the verdict-timeline answer for the pinned
#     BenchmarkTimeToVerdict workload (3rd distinct reporter at 250ms
#     event-time spacing → 500), plus timeline_read_ns_op for the
#     k-way merge cost of serving it.
#
# Obs-overhead denominator history: PR7's quickening roughly halved
# invoke_ns_op, so the unchanged absolute cost of the obs counters
# briefly read as an 11% relative overhead in BENCH_PR7.json. PR8
# removed the remaining atomics from the Invoke path (buffered invoke
# counter + histogram accumulator, both published by FlushObs), so the
# ratio is back within run-to-run noise against the quickened
# denominator — same key, honest baseline.
#
# Measurement hygiene (the PR6 file reported obs overhead of -2.7%,
# i.e. the instrumented loop "faster" than the plain one): the micro
# benchmarks run -count times (default 5) interleaved and the schema
# reports per-benchmark medians. obs_overhead_raw_pct keeps the honest
# median difference, obs_overhead_pct clamps it at 0, and
# obs_overhead_within_noise flags readings inside the ±3% run-to-run
# band so consumers don't chart noise as signal. The traced/untraced
# ingest pair interleaves the same way for the same reason.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
COUNT="${2:-5}"
OUT=BENCH_PR10.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Micro benchmarks: COUNT interleaved rounds, medians taken in the
# parser. Interleaving (COUNT whole-block invocations instead of one
# -count=COUNT run) matters on a shared box: -count repeats each
# benchmark back-to-back, so warm-up and throttle drift land entirely
# on whichever bench runs first and the overhead ratio inherits the
# skew — exactly how PR6 recorded a negative obs overhead.
: > "$RAW"
i=1
while [ "$i" -le "$COUNT" ]; do
	go test -run '^$' \
		-bench 'BenchmarkInvoke$|BenchmarkInvokeRef$|BenchmarkInvokeObs$' \
		-benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW"
	i=$((i + 1))
done

# Table 3 campaign at an explicit GOMAXPROCS matrix. Marker lines tag
# each block so the parser attributes rows to their core budget.
for G in 1 2 4 8; do
	echo "### gomaxprocs $G" | tee -a "$RAW"
	GOMAXPROCS="$G" go test -run '^$' \
		-bench 'BenchmarkTable3FirstTrigger' \
		-benchmem -benchtime 1x -count 3 . | tee -a "$RAW"
done
echo "### gomaxprocs end" | tee -a "$RAW"

go test -run '^$' \
	-bench 'BenchmarkEngineCold$|BenchmarkEngineWarm$' \
	-benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW"

# Traced vs untraced ingestion, interleaved like the VM micro pair so
# trace_overhead_pct compares medians under the same thermal/cache
# conditions rather than inheriting warm-up skew. Five rounds: the
# full-stack bench drifts ±5% run to run on the shared box, and a
# 3-round median once read 3.5% for a delta that 5 rounds resolve to
# under 1%.
i=1
while [ "$i" -le 5 ]; do
	go test -run '^$' \
		-bench 'BenchmarkMarketIngestHTTP$|BenchmarkMarketIngestHTTPTraced$' \
		-benchmem -benchtime "$BENCHTIME" ./internal/market | tee -a "$RAW"
	i=$((i + 1))
done

go test -run '^$' \
	-bench 'BenchmarkWALReplay$|BenchmarkTimeToVerdict$' \
	-benchmem -benchtime "$BENCHTIME" ./internal/market | tee -a "$RAW"

# Fingerprint similarity: ingest throughput, the top-K query at two
# corpus sizes (their ratio is the sub-quadratic check), and the fused
# two-channel verdict. Interleaved rounds like the other market pairs.
i=1
while [ "$i" -le "$COUNT" ]; do
	go test -run '^$' \
		-bench 'BenchmarkFingerprintIngest$|BenchmarkSimilarQuery$|BenchmarkFusedVerdict$' \
		-benchtime "$BENCHTIME" ./internal/market | tee -a "$RAW"
	i=$((i + 1))
done

# The restart pair seeds a 120k-event store per benchmark, so a fixed
# iteration count keeps the seeding cost bounded while still averaging
# a handful of reopens.
go test -run '^$' \
	-bench 'BenchmarkRestartReplayFull$|BenchmarkRestartReplayCheckpoint$' \
	-benchtime 5x ./internal/market | tee -a "$RAW"

# Multi-node cluster: routed ingest through a 3-node HTTP cluster plus
# the federated read pair. Interleaved rounds like the other full-stack
# benches; the acceptance bar is cluster ingest within 20% of the
# single-node market_ingest_events_per_sec.
i=1
while [ "$i" -le "$COUNT" ]; do
	go test -run '^$' \
		-bench 'BenchmarkClusterIngest$|BenchmarkFederatedVerdict$|BenchmarkFederatedTimeline$' \
		-benchtime "$BENCHTIME" ./internal/market/cluster | tee -a "$RAW"
	i=$((i + 1))
done

# Previous campaign allocs/op, for the reduction ratio.
PREV_ALLOCS="$(sed -n 's/.*"table3_workers1_allocs_op": \([0-9]*\).*/\1/p' BENCH_PR6.json 2>/dev/null || true)"

awk -v cores="$(nproc 2>/dev/null || echo 1)" -v prev_allocs="${PREV_ALLOCS:-0}" '
function metric(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($i ~ name "$") return $(i-1)
	return ""
}
# push a sample into series s; med() returns its median.
function push(s, v) { if (v != "") { cnt[s]++; val[s, cnt[s]] = v + 0 } }
function med(s,    n, i, j, t) {
	n = cnt[s]
	if (n == 0) return ""
	for (i = 2; i <= n; i++) {
		t = val[s, i]
		for (j = i - 1; j >= 1 && val[s, j] > t; j--)
			val[s, j + 1] = val[s, j]
		val[s, j + 1] = t
	}
	if (n % 2) return val[s, (n + 1) / 2]
	return (val[s, n / 2] + val[s, n / 2 + 1]) / 2
}
function out(v) { return v == "" ? "null" : v }

/^### gomaxprocs/ { g = $3 }
/BenchmarkTable3FirstTrigger\/workers=1/ {
	push("t3w1_g" g, metric("ns\\/op")); push("t3w1a_g" g, metric("allocs\\/op"))
}
/BenchmarkTable3FirstTrigger\/workers=8/ {
	push("t3w8_g" g, metric("ns\\/op")); push("t3w8a_g" g, metric("allocs\\/op"))
}
/^BenchmarkInvokeObs[-\t ]/ { push("obs", metric("ns\\/op")); push("obsa", metric("allocs\\/op")); next }
/^BenchmarkInvokeRef[-\t ]/ { push("ref", metric("ns\\/op")); push("refa", metric("allocs\\/op")); next }
/^BenchmarkInvoke[-\t ]/ { push("inv", metric("ns\\/op")); push("invb", metric("B\\/op")); push("inva", metric("allocs\\/op")) }
/^BenchmarkEngineCold/ {
	cold = metric("ns\\/op")
	s_unpack = metric("unpack_ns_op"); s_profile = metric("profile_ns_op")
	s_analyze = metric("analyze_ns_op"); s_construct = metric("construct_ns_op")
	s_stego = metric("stego_ns_op"); s_validate = metric("validate_ns_op")
	s_repack = metric("repack_ns_op")
}
/^BenchmarkEngineWarm/ { warm = metric("ns\\/op"); hitpct = metric("cache_hit_pct") }
/^BenchmarkMarketIngestHTTPTraced/ {
	push("ingt", metric("events_sec")); push("ingtp99", metric("p99_ms"))
	push("srvp99", metric("srv_p99_ms")); next
}
/^BenchmarkMarketIngestHTTP/ { push("ing", metric("events_sec")); push("ingp99", metric("p99_ms")) }
/^BenchmarkTimeToVerdict/ { ttv = metric("ttv_ms"); tlread = metric("ns\\/op") }
/^BenchmarkWALReplay/ { walrep = metric("events_sec") }
/^BenchmarkRestartReplayFull/ { rfull = metric("ms_restart") }
/^BenchmarkRestartReplayCheckpoint/ { rckpt = metric("ms_restart") }
/^BenchmarkFingerprintIngest/ { push("fping", metric("ns\\/op")) }
/^BenchmarkSimilarQuery\/corpus-1024/ { push("sq1k", metric("ns\\/op")) }
/^BenchmarkSimilarQuery\/corpus-4096/ { push("sq4k", metric("ns\\/op")) }
/^BenchmarkFusedVerdict/ { push("fused", metric("ns\\/op")) }
/^BenchmarkClusterIngest/ { push("cing", metric("events\\/s")); push("cfan", metric("p99fan_ms")) }
/^BenchmarkFederatedVerdict/ { push("fverd", metric("ns\\/op")) }
/^BenchmarkFederatedTimeline/ { push("ftl", metric("ns\\/op")) }
END {
	inv = med("inv"); invb = med("invb"); inva = med("inva")
	obs = med("obs"); obsa = med("obsa")
	ref = med("ref"); refa = med("refa")
	# Serial campaign baseline: workers=1 pinned to one core.
	w1 = med("t3w1_g1"); w1a = med("t3w1a_g1")
	printf "{\n"
	printf "  \"bench\": \"PR10 fingerprint similarity service, fused verdicts, v1 API redesign\",\n"
	printf "  \"cores\": %d,\n", cores
	printf "  \"bench_count\": %d,\n", cnt["inv"]
	printf "  \"table3_workers1_ns_op\": %s,\n", out(w1)
	w8max = med("t3w8_g8")
	printf "  \"table3_workers8_ns_op\": %s,\n", out(w8max)
	printf "  \"table3_speedup_8v1\": %s,\n", (w1 == "" || w8max == "" || w8max == 0 ? "null" : sprintf("%.2f", w1 / w8max))
	for (i = 1; i <= 8; i *= 2) {
		w8g = med("t3w8_g" i)
		printf "  \"table3_speedup_g%d\": %s,\n", i, (w1 == "" || w8g == "" || w8g == 0 ? "null" : sprintf("%.2f", w1 / w8g))
	}
	printf "  \"table3_workers1_allocs_op\": %s,\n", out(w1a)
	printf "  \"table3_workers8_allocs_op\": %s,\n", out(med("t3w8a_g8"))
	printf "  \"table3_allocs_reduction\": %s,\n", (prev_allocs == 0 || w1a == "" || w1a == 0 ? "null" : sprintf("%.2f", prev_allocs / w1a))
	printf "  \"invoke_ns_op\": %s,\n", out(inv)
	printf "  \"invoke_quickened_ns_op\": %s,\n", out(inv)
	printf "  \"invoke_ref_ns_op\": %s,\n", out(ref)
	printf "  \"invoke_ref_allocs_op\": %s,\n", out(refa)
	printf "  \"invoke_quickened_speedup\": %s,\n", (inv == "" || ref == "" || inv == 0 ? "null" : sprintf("%.2f", ref / inv))
	printf "  \"invoke_bytes_op\": %s,\n", out(invb)
	printf "  \"invoke_allocs_op\": %s,\n", out(inva)
	printf "  \"invoke_obs_ns_op\": %s,\n", out(obs)
	printf "  \"invoke_obs_allocs_op\": %s,\n", out(obsa)
	if (inv == "" || obs == "" || inv == 0) {
		raw_pct = ""
	} else {
		raw_pct = (obs - inv) * 100.0 / inv
	}
	printf "  \"obs_overhead_raw_pct\": %s,\n", (raw_pct == "" ? "null" : sprintf("%.1f", raw_pct))
	printf "  \"obs_overhead_pct\": %s,\n", (raw_pct == "" ? "null" : sprintf("%.1f", raw_pct < 0 ? 0 : raw_pct))
	printf "  \"obs_overhead_within_noise\": %s,\n", (raw_pct == "" ? "null" : (raw_pct < 3.0 && raw_pct > -3.0 ? "true" : "false"))
	printf "  \"protect_cold_ns_op\": %s,\n", out(cold)
	printf "  \"protect_warm_ns_op\": %s,\n", out(warm)
	printf "  \"protect_warm_speedup\": %s,\n", (cold == "" || warm == "" || warm == 0 ? "null" : sprintf("%.2f", cold / warm))
	printf "  \"protect_warm_cache_hit_pct\": %s,\n", out(hitpct)
	printf "  \"stage_unpack_ns\": %s,\n", out(s_unpack)
	printf "  \"stage_profile_ns\": %s,\n", out(s_profile)
	printf "  \"stage_analyze_ns\": %s,\n", out(s_analyze)
	printf "  \"stage_construct_ns\": %s,\n", out(s_construct)
	printf "  \"stage_stego_ns\": %s,\n", out(s_stego)
	printf "  \"stage_validate_ns\": %s,\n", out(s_validate)
	printf "  \"stage_repack_ns\": %s,\n", out(s_repack)
	ing = med("ing"); ingp99 = med("ingp99")
	ingt = med("ingt"); ingtp99 = med("ingtp99"); srvp99 = med("srvp99")
	printf "  \"market_ingest_events_per_sec\": %s,\n", out(ing)
	printf "  \"market_ingest_p99_ms\": %s,\n", out(ingp99)
	printf "  \"market_ingest_traced_events_per_sec\": %s,\n", out(ingt)
	if (ing == "" || ingt == "" || ing == 0) {
		trace_pct = ""
	} else {
		trace_pct = (ing - ingt) * 100.0 / ing
	}
	printf "  \"trace_overhead_raw_pct\": %s,\n", (trace_pct == "" ? "null" : sprintf("%.1f", trace_pct))
	printf "  \"trace_overhead_pct\": %s,\n", (trace_pct == "" ? "null" : sprintf("%.1f", trace_pct < 0 ? 0 : trace_pct))
	printf "  \"trace_overhead_within_noise\": %s,\n", (trace_pct == "" ? "null" : (trace_pct < 3.0 && trace_pct > -3.0 ? "true" : "false"))
	printf "  \"e2e_p99_ms\": %s,\n", out(ingtp99)
	printf "  \"srv_flush_p99_ms\": %s,\n", out(srvp99)
	printf "  \"time_to_verdict_ms\": %s,\n", out(ttv)
	printf "  \"timeline_read_ns_op\": %s,\n", out(tlread)
	printf "  \"market_wal_replay_events_per_sec\": %s,\n", out(walrep)
	printf "  \"restart_replay_full_ms\": %s,\n", out(rfull)
	printf "  \"restart_replay_checkpoint_ms\": %s,\n", out(rckpt)
	printf "  \"restart_speedup\": %s,\n", (rfull == "" || rckpt == "" || rckpt == 0 ? "null" : sprintf("%.2f", rfull / rckpt))
	cing = med("cing"); cfan = med("cfan"); fverd = med("fverd"); ftl = med("ftl")
	printf "  \"cluster_events_per_sec\": %s,\n", out(cing)
	printf "  \"cluster_vs_single_node_pct\": %s,\n", (ing == "" || cing == "" || ing == 0 ? "null" : sprintf("%.1f", cing * 100.0 / ing))
	printf "  \"router_fanout_p99_ms\": %s,\n", out(cfan)
	printf "  \"federated_verdict_ns_op\": %s,\n", out(fverd)
	printf "  \"federated_timeline_ns_op\": %s,\n", out(ftl)
	fping = med("fping"); sq1k = med("sq1k"); sq4k = med("sq4k"); fused = med("fused")
	printf "  \"fingerprint_ingest_per_sec\": %s,\n", (fping == "" || fping == 0 ? "null" : sprintf("%.0f", 1e9 / fping))
	printf "  \"similar_query_ns_op\": %s,\n", out(sq4k)
	printf "  \"similar_query_1k_ns_op\": %s,\n", out(sq1k)
	printf "  \"similar_query_corpus_ratio\": %s,\n", (sq1k == "" || sq4k == "" || sq1k == 0 ? "null" : sprintf("%.2f", sq4k / sq1k))
	printf "  \"fused_verdict_ns_op\": %s\n", out(fused)
	printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
