#!/bin/sh
# Runs the PR's perf benchmarks and writes BENCH_PR2.json.
#
#   scripts/bench.sh [benchtime]
#
# Covers the parallel campaign path (Table3 at workers=1 vs workers=8,
# warm Prepare cache) and the VM dispatch hot path (BenchmarkInvoke).
# Speedup is reported honestly for whatever machine this runs on —
# on a single-core box workers=8 can only match workers=1, never beat
# it, which is why the core count is part of the record.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT=BENCH_PR2.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
	-bench 'BenchmarkTable3FirstTrigger|BenchmarkInvoke$' \
	-benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v cores="$(nproc 2>/dev/null || echo 1)" '
function metric(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($i ~ name "$") return $(i-1)
	return ""
}
/BenchmarkTable3FirstTrigger\/workers=1/  { w1 = metric("ns\\/op"); w1a = metric("allocs\\/op") }
/BenchmarkTable3FirstTrigger\/workers=8/  { w8 = metric("ns\\/op"); w8a = metric("allocs\\/op") }
/^BenchmarkInvoke/ { inv = metric("ns\\/op"); invb = metric("B\\/op"); inva = metric("allocs\\/op") }
END {
	printf "{\n"
	printf "  \"bench\": \"PR2 parallel evaluation engine\",\n"
	printf "  \"cores\": %d,\n", cores
	printf "  \"table3_workers1_ns_op\": %s,\n", (w1 == "" ? "null" : w1)
	printf "  \"table3_workers8_ns_op\": %s,\n", (w8 == "" ? "null" : w8)
	printf "  \"table3_speedup_8v1\": %s,\n", (w1 == "" || w8 == "" || w8 == 0 ? "null" : sprintf("%.2f", w1 / w8))
	printf "  \"table3_workers1_allocs_op\": %s,\n", (w1a == "" ? "null" : w1a)
	printf "  \"table3_workers8_allocs_op\": %s,\n", (w8a == "" ? "null" : w8a)
	printf "  \"invoke_ns_op\": %s,\n", (inv == "" ? "null" : inv)
	printf "  \"invoke_bytes_op\": %s,\n", (invb == "" ? "null" : invb)
	printf "  \"invoke_allocs_op\": %s\n", (inva == "" ? "null" : inva)
	printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
