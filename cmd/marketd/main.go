// Command marketd is the market operator's detonation-ingestion
// daemon: the always-on endpoint a fleet of protected apps reports
// logic-bomb detonations to. It fronts a market.Store — sharded
// dedup, append-only WAL, crash recovery — with the HTTP API in
// internal/market/server.go.
//
// Usage:
//
//	marketd -addr :8844 -data ./marketd-data
//	        [-shards 4] [-queue-cap 4096] [-dedup-window 65536]
//	        [-segment-mb 64] [-threshold 3] [-timeline-cap 256]
//	        [-fsync] [-checkpoint-every 65536] [-drain-timeout 10s]
//	        [-tau 0.6] [-similar-k 10] [-max-fingerprint-entries 4096]
//	        [-debug-addr :6060]
//	        [-node-id n0] [-slots 256] [-shard-range 0:86]
//	marketd -router -addr :8840 -nodes http://h1:8844,http://h2:8844,...
//
// Multi-node: a daemon given -shard-range lo:hi owns only that slice
// of the 0..slots key space and answers 421 to anything else; the
// range (with -slots and -node-id) is pinned in meta.json exactly
// like the shard count, so a restart with different flags refuses to
// start. -router starts the stateless fan-out tier instead of a node:
// it discovers each -nodes member's descriptor (retrying briefly so
// routers and nodes can start in any order), validates the ranges
// tile the slot space, and serves the same HTTP surface a single
// node does — routed writes (reports and fingerprints), federated
// fused verdicts, timelines and similarity queries.
//
// On startup the daemon restores each shard from its newest valid
// checkpoint and replays only the WAL tail past it (full replay when
// no checkpoint survives), prints a recovery summary, and compacts
// segments behind the checkpoint. On SIGINT/SIGTERM it drains the
// shard queues — bounded by -drain-timeout so a wedged disk cannot
// hang shutdown forever — takes a farewell checkpoint per shard,
// seals the logs, and prints "clean shutdown"; shards that miss the
// deadline are named and the exit status is nonzero. Every report
// acked with a 200 before the signal is on disk and will be restored
// by the next start.
//
// /metrics and /metrics.json are served on the main listener;
// -debug-addr additionally serves them plus pprof on a side port via
// the same obs.ServeDebug used by cmd/report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bombdroid/internal/market"
	"bombdroid/internal/market/cluster"
	"bombdroid/internal/obs"
)

// run starts the daemon and blocks until ctx is cancelled, then shuts
// down cleanly. main is signal/exit plumbing around it; tests call it
// directly with a cancellable ctx and an ephemeral port. ready, when
// non-nil, receives the bound address once the listener is up.
func run(ctx context.Context, out io.Writer, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("marketd", flag.ContinueOnError)
	addr := fs.String("addr", ":8844", "listen address for the ingestion API")
	data := fs.String("data", "", "data directory for WAL and metadata (required)")
	shards := fs.Int("shards", 0, "ingestion shards (0 = default; pinned at first start)")
	queueCap := fs.Int("queue-cap", 0, "per-shard queue bound before 429 backpressure (0 = default)")
	dedupWindow := fs.Int("dedup-window", 0, "per-shard dedup window size in keys (0 = default)")
	segmentMB := fs.Int("segment-mb", 0, "WAL segment rotation size in MiB (0 = default)")
	threshold := fs.Int("threshold", 0, "detections before an app is marked repackaged (0 = default)")
	timelineCap := fs.Int("timeline-cap", 0, "per-shard verdict-timeline entries retained per app (0 = default; must exceed -threshold)")
	fsync := fs.Bool("fsync", false, "fsync the WAL on every commit (survives machine crash, not just process kill)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "records between checkpoint snapshots per shard (0 = default, negative disables)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max time to drain and seal shards on shutdown (0 = wait forever)")
	tau := fs.Float64("tau", 0, "similarity score at or above which a neighbor counts for the fused verdict (0 = default)")
	similarK := fs.Int("similar-k", 0, "neighbors returned by the similar query (0 = default)")
	maxFPEntries := fs.Int("max-fingerprint-entries", 0, "max digests per uploaded fingerprint (0 = default)")
	debugAddr := fs.String("debug-addr", "", "serve metrics + pprof on this extra address")
	nodeID := fs.String("node-id", "", "this node's cluster identity (pinned at first start)")
	slots := fs.Int("slots", 0, "cluster key-space slot count (0 = default 256; pinned at first start)")
	shardRange := fs.String("shard-range", "", "owned slot range as lo:hi, hi exclusive (default: all slots; pinned at first start)")
	router := fs.Bool("router", false, "run the stateless router tier instead of a storage node (requires -nodes)")
	nodes := fs.String("nodes", "", "comma-separated member node URLs for -router mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *router {
		return runRouter(ctx, out, *addr, *nodes, ready)
	}
	if *nodes != "" {
		return fmt.Errorf("-nodes requires -router")
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	var rng market.ShardRange
	if *shardRange != "" {
		var err error
		if rng, err = market.ParseShardRange(*shardRange); err != nil {
			return err
		}
	}

	cfg := market.Config{
		Dir:                   *data,
		Shards:                *shards,
		QueueCap:              *queueCap,
		DedupWindow:           *dedupWindow,
		SegmentBytes:          int64(*segmentMB) << 20,
		Threshold:             *threshold,
		TimelineCap:           *timelineCap,
		Fsync:                 *fsync,
		CheckpointEvery:       *checkpointEvery,
		SimilarityTau:         *tau,
		SimilarityK:           *similarK,
		MaxFingerprintEntries: *maxFPEntries,
		NodeID:                *nodeID,
		Slots:                 *slots,
		Range:                 rng,
		Obs:                   obs.NewRegistry(),
	}
	st, stats, err := market.Open(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "marketd: recovered %d records from %d segments (%d torn tails, %d bytes truncated); %d/%d shards from checkpoint, %d tail records, %d segments compacted\n",
		stats.Records, stats.Segments, stats.TornTails, stats.TruncatedBytes,
		stats.Checkpoints, st.Shards(), stats.TailRecords, stats.CompactedSegments)
	if d := st.NodeDesc(); d.RangeLo != 0 || d.RangeHi != d.Slots {
		fmt.Fprintf(out, "marketd: node %q owns slots %s of %d\n", d.NodeID, d.Range(), d.Slots)
	}

	if *debugAddr != "" {
		stop, bound, err := obs.ServeDebug(*debugAddr, st.Obs())
		if err != nil {
			st.Close()
			return err
		}
		defer stop()
		fmt.Fprintf(out, "marketd: debug endpoint listening on %s\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		st.Close()
		return err
	}
	fmt.Fprintf(out, "marketd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: market.NewHandler(st), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		st.Close()
		return err
	case <-ctx.Done():
	}

	// Stop taking requests (finish in-flight ones), then drain the
	// shards, checkpoint, and seal the WALs — all bounded by the drain
	// deadline so a wedged shard cannot hang shutdown forever.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		st.Close()
		return err
	}
	missed, err := st.CloseTimeout(*drainTimeout)
	if len(missed) > 0 {
		fmt.Fprintf(out, "marketd: shutdown drain missed deadline; shards %v not sealed\n", missed)
		return err
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "marketd: clean shutdown")
	return nil
}

// runRouter starts the stateless fan-out tier: discover the member
// nodes (retrying briefly, so a process manager may start routers and
// nodes in any order), then serve the cluster handler until ctx is
// cancelled. No data directory, no WAL — all durability lives in the
// nodes, which is what makes the router safe to run N-for-1.
func runRouter(ctx context.Context, out io.Writer, addr, nodes string, ready chan<- string) error {
	if nodes == "" {
		return fmt.Errorf("-router requires -nodes")
	}
	var urls []string
	for _, u := range strings.Split(nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	cfg := cluster.Config{Nodes: urls, Gzip: true, Obs: obs.NewRegistry()}
	var rt *cluster.Router
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		if rt, err = cluster.New(ctx, cfg); err == nil {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return fmt.Errorf("router discovery: %w", err)
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, d := range rt.Members() {
		fmt.Fprintf(out, "marketd: router member %q owns slots %s of %d (%d shards)\n", d.NodeID, d.Range(), d.Slots, d.Shards)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "marketd: router listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	srv := &http.Server{Handler: cluster.NewHandler(rt), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	fmt.Fprintln(out, "marketd: clean shutdown")
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:], nil); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "marketd:", err)
		os.Exit(1)
	}
}
