package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bombdroid/internal/market"
	"bombdroid/internal/report"
)

// startDaemon runs the daemon against dir on an ephemeral port and
// returns its base URL plus a stop function that cancels it and
// returns the full output after a clean exit.
func startDaemon(t *testing.T, dir string, extra ...string) (string, func() string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	var mu sync.Mutex
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dir}, extra...)
	go func() {
		mu.Lock()
		defer mu.Unlock()
		errc <- run(ctx, &out, args, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr, func() string {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon exited with error: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
		mu.Lock()
		defer mu.Unlock()
		return out.String()
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-no-such-flag"}, nil); err == nil {
		t.Fatal("unknown flag should fail")
	}
	if err := run(context.Background(), &out, nil, nil); err == nil {
		t.Fatal("missing -data should fail")
	}
	if err := run(context.Background(), &out, []string{"-data", t.TempDir(), "-queue-cap", "-1"}, nil); err == nil {
		t.Fatal("negative queue-cap should fail Validate")
	}
}

// TestDaemonLifecycle: start, ingest, verdict, SIGTERM-equivalent
// cancel, restart — the restarted daemon replays the WAL and serves
// the identical verdict.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	base, stop := startDaemon(t, dir, "-shards", "2", "-threshold", "2")
	cl := &market.Client{BaseURL: base}

	evs := []report.Event{
		{App: "app.x", Bomb: "b1", User: "u1", TimeMs: 1},
		{App: "app.x", Bomb: "b1", User: "u2", TimeMs: 2},
		{App: "app.x", Bomb: "b1", User: "u1", TimeMs: 3}, // dup
	}
	res, err := cl.Reports().Post(context.Background(), evs)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if res.Accepted != 2 || res.Duplicates != 1 {
		t.Fatalf("Post = %+v, want accepted 2, duplicates 1", res)
	}
	v1, err := cl.Verdicts().Get(context.Background(), "app.x")
	if err != nil {
		t.Fatalf("Verdict: %v", err)
	}
	if !v1.Flagged || v1.Channels.Reports.Detections != 2 {
		t.Fatalf("verdict = %+v, want repackaged with 2 detections", v1)
	}

	output := stop()
	if !strings.Contains(output, "marketd: listening on 127.0.0.1:") {
		t.Errorf("missing listening line:\n%s", output)
	}
	if !strings.Contains(output, "marketd: clean shutdown") {
		t.Errorf("missing clean-shutdown line:\n%s", output)
	}

	// Restart over the same data dir: replay must reproduce the state.
	base2, stop2 := startDaemon(t, dir, "-shards", "2", "-threshold", "2")
	cl2 := &market.Client{BaseURL: base2}
	v2, err := cl2.Verdicts().Get(context.Background(), "app.x")
	if err != nil {
		t.Fatalf("Verdict after restart: %v", err)
	}
	if v2 != v1 {
		t.Errorf("verdict changed across restart: %+v vs %+v", v1, v2)
	}
	// Dedup state replayed too: the old batch is all duplicates.
	res2, err := cl2.Reports().Post(context.Background(), evs)
	if err != nil || res2.Accepted != 0 || res2.Duplicates != 3 {
		t.Errorf("re-Post after restart = %+v (%v), want all duplicates", res2, err)
	}
	output2 := stop2()
	if !strings.Contains(output2, "recovered 2 records") {
		t.Errorf("missing replay summary:\n%s", output2)
	}
}

func TestDaemonDebugAddr(t *testing.T) {
	base, stop := startDaemon(t, t.TempDir(), "-debug-addr", "127.0.0.1:0")
	cl := &market.Client{BaseURL: base}
	if _, err := cl.Reports().Post(context.Background(), []report.Event{{App: "a", Bomb: "b", User: "u"}}); err != nil {
		t.Fatal(err)
	}
	output := stop()
	if !strings.Contains(output, "marketd: debug endpoint listening on 127.0.0.1:") {
		t.Errorf("missing debug endpoint line:\n%s", output)
	}
}

// TestDaemonCheckpointRestart: a restart after a clean shutdown comes
// back from the checkpoint (zero tail records) and says so in the
// recovery line; /healthz reports every shard ok.
func TestDaemonCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	base, stop := startDaemon(t, dir, "-shards", "2", "-checkpoint-every", "100")
	cl := &market.Client{BaseURL: base}
	var evs []report.Event
	for i := 0; i < 50; i++ {
		evs = append(evs, report.Event{App: "app.ck", Bomb: fmt.Sprintf("b%d", i), User: "u", TimeMs: int64(i)})
	}
	if _, err := cl.Reports().Post(context.Background(), evs); err != nil {
		t.Fatalf("Post: %v", err)
	}
	stop()

	base2, stop2 := startDaemon(t, dir, "-shards", "2", "-checkpoint-every", "100")
	resp, err := http.Get(base2 + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after restart: %v %v", resp, err)
	}
	var health struct {
		Status         string `json:"status"`
		ShardsOK       int    `json:"shards_ok"`
		ShardsDegraded int    `json:"shards_degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.ShardsOK != 2 || health.ShardsDegraded != 0 {
		t.Errorf("healthz = %+v, want 2 ok shards", health)
	}
	cl2 := &market.Client{BaseURL: base2}
	res, err := cl2.Reports().Post(context.Background(), evs)
	if err != nil || res.Accepted != 0 || res.Duplicates != 50 {
		t.Errorf("re-Post after checkpoint restart = %+v (%v), want all duplicates", res, err)
	}
	output := stop2()
	if !strings.Contains(output, "recovered 50 records") {
		t.Errorf("missing recovery summary:\n%s", output)
	}
	if !strings.Contains(output, "2/2 shards from checkpoint, 0 tail records") {
		t.Errorf("restart did not come from checkpoints:\n%s", output)
	}
}

// TestDaemonPinsShardRange: a daemon restarted with a -shard-range
// that disagrees with the data directory's meta.json must refuse to
// start, exactly like a -shards change.
func TestDaemonPinsShardRange(t *testing.T) {
	dir := t.TempDir()
	_, stop := startDaemon(t, dir, "-node-id", "n0", "-slots", "16", "-shard-range", "0:8")
	stop()

	var out bytes.Buffer
	err := run(context.Background(), &out,
		[]string{"-addr", "127.0.0.1:0", "-data", dir, "-node-id", "n0", "-slots", "16", "-shard-range", "0:16"}, nil)
	if err == nil || !strings.Contains(err.Error(), "shard range") {
		t.Fatalf("range change started (err = %v), want refusal", err)
	}
	if err := run(context.Background(), &out,
		[]string{"-data", t.TempDir(), "-shard-range", "8:4"}, nil); err == nil {
		t.Fatal("malformed -shard-range accepted")
	}
}

// TestRouterMode: three partial-range daemons plus a -router daemon;
// writes through the router land on the owning nodes and the
// federated verdict counts them all.
func TestRouterMode(t *testing.T) {
	u0, stop0 := startDaemon(t, t.TempDir(), "-node-id", "n0", "-slots", "16", "-shard-range", "0:5", "-shards", "2")
	u1, stop1 := startDaemon(t, t.TempDir(), "-node-id", "n1", "-slots", "16", "-shard-range", "5:11", "-shards", "2")
	u2, stop2 := startDaemon(t, t.TempDir(), "-node-id", "n2", "-slots", "16", "-shard-range", "11:16", "-shards", "2")
	defer stop0()
	defer stop1()
	defer stop2()

	ur, stopR := startDaemon(t, t.TempDir(), "-router", "-nodes", u0+","+u1+","+u2)
	cl := &market.Client{BaseURL: ur}
	var evs []report.Event
	for i := 0; i < 60; i++ {
		evs = append(evs, report.Event{App: "app.r", Bomb: fmt.Sprintf("b%d", i), User: "u1", TimeMs: int64(i + 1)})
	}
	pr, err := cl.Reports().Post(context.Background(), evs)
	if err != nil || pr.Accepted != 60 {
		t.Fatalf("post through router = %+v (%v), want 60 accepted", pr, err)
	}
	v, err := cl.Verdicts().Get(context.Background(), "app.r")
	if err != nil || v.Channels.Reports.Detections != 60 || !v.Flagged {
		t.Fatalf("federated verdict = %+v (%v), want 60 detections", v, err)
	}
	// No single node holds the full count.
	for _, u := range []string{u0, u1, u2} {
		nv, err := (&market.Client{BaseURL: u}).Verdicts().Get(context.Background(), "app.r")
		if err != nil {
			t.Fatal(err)
		}
		if nv.Channels.Reports.Detections == 60 || nv.Channels.Reports.Detections == 0 {
			t.Errorf("node %s holds %d detections, want a proper share", u, nv.Channels.Reports.Detections)
		}
	}
	out := stopR()
	if !strings.Contains(out, "router listening") || !strings.Contains(out, "clean shutdown") {
		t.Errorf("router output missing lifecycle lines:\n%s", out)
	}
}

// TestRouterModeRequiresNodes covers the flag cross-checks.
func TestRouterModeRequiresNodes(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-router"}, nil); err == nil {
		t.Fatal("-router without -nodes should fail")
	}
	if err := run(context.Background(), &out, []string{"-data", t.TempDir(), "-nodes", "http://x"}, nil); err == nil {
		t.Fatal("-nodes without -router should fail")
	}
}
