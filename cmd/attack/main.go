// Command attack runs the adversary toolbox against a protected .apk:
// text search, bomb-site recon, brute force, deletion, forced
// execution, slicing, and whole-file symbolic execution.
//
// Usage:
//
//	attack -apk protected.apk [-mode all|text|scan|brute|delete|force|slice|sym]
//	       [-budget 65536] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"bombdroid/internal/apk"
	"bombdroid/internal/attack"
	"bombdroid/internal/dex"
	"bombdroid/internal/symexec"
)

func main() {
	apkPath := flag.String("apk", "", "package to attack")
	mode := flag.String("mode", "all", "all|text|scan|brute|delete|force|slice|sym")
	budget := flag.Int64("budget", 1<<16, "brute-force integer budget per site")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()
	if *apkPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*apkPath, *mode, *budget, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run(apkPath, mode string, budget, seed int64) error {
	data, err := os.ReadFile(apkPath)
	if err != nil {
		return err
	}
	pkg, err := apk.Unpack(data)
	if err != nil {
		return err
	}
	file, err := pkg.DexFile()
	if err != nil {
		return err
	}
	all := mode == "all"

	if all || mode == "text" {
		fmt.Println("== text search ==")
		for _, f := range attack.TextSearch(file) {
			fmt.Printf("  %-20s %d occurrences\n", f.Token, f.Count)
		}
	}
	if all || mode == "scan" {
		sites := attack.ScanBombSites(file)
		fmt.Printf("== bomb-site recon: %d sites ==\n", len(sites))
		for i, s := range sites {
			if i >= 10 {
				fmt.Printf("  … and %d more\n", len(sites)-10)
				break
			}
			fmt.Printf("  %s pc=%d salt=%s Hc=%s… blob=%d\n",
				s.Method, s.PC, s.Salt, s.Hc[:12], s.BlobIdx)
		}
	}
	if all || mode == "brute" {
		res := attack.BruteForce(file, attack.BruteForceOptions{IntBudget: budget})
		fmt.Printf("== brute force: cracked %d/%d sites in %d attempts ==\n",
			len(res.Cracked), res.Sites, res.Attempts)
		for i, c := range res.Cracked {
			if i >= 10 {
				fmt.Printf("  … and %d more\n", len(res.Cracked)-10)
				break
			}
			fmt.Printf("  %s: key = %s\n", c.Site.Method, c.Key)
		}
	}
	if all || mode == "delete" {
		res := attack.DeleteSuspiciousCode(file)
		fmt.Printf("== code deletion: %d sites nopped (run the result to see the corruption) ==\n",
			res.SitesDeleted)
	}
	if all || mode == "force" {
		res, err := attack.ForcedExecution(file, pkg.Res, seed)
		if err != nil {
			return err
		}
		fmt.Printf("== forced execution: %d branches forced ==\n", res.BranchesForced)
		fmt.Printf("  payloads revealed: %d (forced-only: %d), runs corrupted: %d, clean: %d\n",
			res.PayloadRevealed, res.ForcedOnlyReveals, res.Corrupted, res.CleanRuns)
	}
	if all || mode == "slice" {
		res, err := attack.ExecuteSlices(file, pkg.Res, seed)
		if err != nil {
			return err
		}
		fmt.Printf("== slicing: %d slices, %d executed, %d revealed, %d corrupted ==\n",
			res.Slices, res.Executed, res.Revealed, res.Corrupted)
	}
	if all || mode == "sym" {
		sum := symexec.Analyze(file, symexec.Options{Targets: []dex.API{
			dex.APIDecryptLoad, dex.APIGetPublicKey, dex.APIReflectCall,
		}})
		fmt.Printf("== symbolic execution: %d methods, %d paths, %d target hits ==\n",
			sum.Methods, sum.PathsExplored, len(sum.Hits))
		fmt.Printf("  solved: %d, unsolvable: %d\n", len(sum.SolvedHits()), len(sum.UnsolvableHits()))
		for i, h := range sum.UnsolvableHits() {
			if i >= 5 {
				break
			}
			fmt.Printf("  %s pc=%d: %s\n", h.Method, h.PC, h.Reason)
		}
	}
	return nil
}
