package main

import (
	"os"
	"path/filepath"
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/core"
)

func protectedAPK(t *testing.T, dir string) string {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: "atkcli", Seed: 5, TargetLOC: 1000, QCPerMethod: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(9)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := apk.Sign(apk.Build("atkcli", app.File, apk.Resources{Strings: []string{"x"}}), key)
	if err != nil {
		t.Fatal(err)
	}
	prot, _, err := core.ProtectPackage(orig, key, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Pack(prot)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "prot.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllModes(t *testing.T) {
	dir := t.TempDir()
	path := protectedAPK(t, dir)
	for _, mode := range []string{"text", "scan", "brute", "delete", "slice", "sym"} {
		if err := run(path, mode, 1<<10, 1); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.apk")
	os.WriteFile(bad, []byte("junk"), 0o644)
	if err := run(bad, "text", 1, 1); err == nil {
		t.Error("junk input must fail")
	}
	if err := run(filepath.Join(dir, "missing.apk"), "text", 1, 1); err == nil {
		t.Error("missing input must fail")
	}
}
