package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
)

// writeTestAPK builds a signed package on disk (what cmd/apkgen does).
func writeTestAPK(t *testing.T, dir string, keySeed int64) string {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: "cli", Seed: 3, TargetLOC: 1200})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(keySeed)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("cli", app.File, apk.Resources{
		Strings: []string{"x"}, Author: "dev", Icon: []byte{1},
	}), key)
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Pack(pkg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "app.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProtectsOnDisk(t *testing.T) {
	dir := t.TempDir()
	in := writeTestAPK(t, dir, 1)
	out := filepath.Join(dir, "prot.apk")
	report := filepath.Join(dir, "bombs.txt")

	if err := run(in, out, 1, 0.25, false, false, 1500, 64, report, 7); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := pkg.Verify(); err != nil {
		t.Fatalf("protected output must verify: %v", err)
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "Bomb0") {
		t.Error("report missing bomb inventory")
	}
	if !strings.Contains(string(rep), "inner=") {
		t.Error("report missing inner conditions")
	}
}

func TestRunRejectsWrongKey(t *testing.T) {
	dir := t.TempDir()
	in := writeTestAPK(t, dir, 1)
	out := filepath.Join(dir, "prot.apk")
	if err := run(in, out, 999, 0.25, false, false, 500, 64, "", 7); err == nil {
		t.Fatal("mismatched key seed must fail")
	}
}

func TestRunRejectsGarbageInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "junk.apk")
	if err := os.WriteFile(in, []byte("not an apk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, filepath.Join(dir, "o.apk"), 1, 0.25, false, false, 500, 64, "", 7); err == nil {
		t.Fatal("garbage input must fail")
	}
}
