package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
)

// writeTestAPK builds a signed package on disk (what cmd/apkgen does).
func writeTestAPK(t *testing.T, path string, name string, appSeed, keySeed int64) string {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: name, Seed: appSeed, TargetLOC: 1200})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(keySeed)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build(name, app.File, apk.Resources{
		Strings: []string{"x"}, Author: "dev", Icon: []byte{1},
	}), key)
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Pack(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) error {
	t.Helper()
	var out bytes.Buffer
	err := run(context.Background(), &out, args)
	t.Log(out.String())
	return err
}

func TestRunProtectsOnDisk(t *testing.T) {
	dir := t.TempDir()
	in := writeTestAPK(t, filepath.Join(dir, "app.apk"), "cli", 3, 1)
	out := filepath.Join(dir, "prot.apk")
	report := filepath.Join(dir, "bombs.txt")

	if err := runCLI(t, "-in", in, "-out", out, "-keyseed", "1",
		"-profile-events", "1500", "-report", report, "-seed", "7"); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := pkg.Verify(); err != nil {
		t.Fatalf("protected output must verify: %v", err)
	}
	rep, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "Bomb0") {
		t.Error("report missing bomb inventory")
	}
	if !strings.Contains(string(rep), "inner=") {
		t.Error("report missing inner conditions")
	}
}

func TestRunErrorPaths(t *testing.T) {
	dir := t.TempDir()
	in := writeTestAPK(t, filepath.Join(dir, "app.apk"), "cli", 3, 1)
	out := filepath.Join(dir, "o.apk")

	t.Run("missing in and out", func(t *testing.T) {
		if err := runCLI(t); err == nil {
			t.Fatal("no -in/-out/-batch must fail")
		}
	})
	t.Run("missing input file", func(t *testing.T) {
		if err := runCLI(t, "-in", filepath.Join(dir, "nope.apk"), "-out", out); err == nil {
			t.Fatal("nonexistent input must fail")
		}
	})
	t.Run("wrong key seed", func(t *testing.T) {
		err := runCLI(t, "-in", in, "-out", out, "-keyseed", "999", "-profile-events", "500")
		if err == nil || !strings.Contains(err.Error(), "does not match") {
			t.Fatalf("mismatched key seed: err = %v", err)
		}
	})
	t.Run("garbage input", func(t *testing.T) {
		junk := filepath.Join(dir, "junk.apk")
		if err := os.WriteFile(junk, []byte("not an apk"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runCLI(t, "-in", junk, "-out", out); err == nil {
			t.Fatal("garbage input must fail")
		}
	})
	t.Run("unwritable report path", func(t *testing.T) {
		bad := filepath.Join(dir, "no-such-dir", "bombs.txt")
		err := runCLI(t, "-in", in, "-out", out, "-keyseed", "1",
			"-profile-events", "500", "-report", bad)
		if err == nil {
			t.Fatal("unwritable -report must fail")
		}
	})
	t.Run("unknown flag", func(t *testing.T) {
		if err := runCLI(t, "-no-such-flag"); err == nil {
			t.Fatal("unknown flag must fail")
		}
	})
	t.Run("empty batch dir", func(t *testing.T) {
		if err := runCLI(t, "-batch", t.TempDir()); err == nil {
			t.Fatal("batch over an empty directory must fail")
		}
	})
}

// TestBatchProtectsCorpus: the happy path over a small corpus with a
// duplicate member (cache hit) and one corrupt member (isolated error
// entry). The command exits with an error because of the corrupt app,
// but every healthy app is protected and the manifest records all of
// it.
func TestBatchProtectsCorpus(t *testing.T) {
	dir := t.TempDir()
	writeTestAPK(t, filepath.Join(dir, "a.apk"), "appA", 3, 1)
	writeTestAPK(t, filepath.Join(dir, "b.apk"), "appB", 4, 1)
	// Byte-identical duplicate of a.apk: must content-address to the
	// same artifacts and come back as a result-cache hit.
	src, err := os.ReadFile(filepath.Join(dir, "a.apk"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dup.apk"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.apk"), []byte("zzz"), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")
	manifest := filepath.Join(dir, "m.json")

	err = runCLI(t, "-batch", dir, "-outdir", outDir, "-manifest", manifest,
		"-keyseed", "1", "-profile-events", "800", "-workers", "2")
	if err == nil || !strings.Contains(err.Error(), "1 of 4 apps failed") {
		t.Fatalf("batch with a corrupt member: err = %v", err)
	}

	var m batchManifest
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if len(m.Apps) != 4 || m.Cancelled {
		t.Fatalf("manifest: %+v", m)
	}
	byApp := map[string]batchEntry{}
	for _, e := range m.Apps {
		byApp[e.App] = e
	}
	for _, name := range []string{"a.apk", "b.apk", "dup.apk"} {
		e := byApp[name]
		if e.Status != "ok" {
			t.Fatalf("%s: status %q (%s)", name, e.Status, e.Error)
		}
		data, err := os.ReadFile(e.Out)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := apk.Unpack(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := pkg.Verify(); err != nil {
			t.Fatalf("%s: protected output must verify: %v", name, err)
		}
		if len(e.Stages) == 0 {
			t.Errorf("%s: no stage timings in manifest", name)
		}
	}
	if e := byApp["corrupt.apk"]; e.Status != "error" || e.Error == "" {
		t.Fatalf("corrupt.apk entry: %+v", e)
	}
	// a.apk and dup.apk are byte-identical: whichever ran second is a
	// pure result-cache hit, and both protected outputs match.
	if m.Cache.Hits == 0 {
		t.Errorf("duplicate input produced no cache hit: %+v", m.Cache)
	}
	aOut, err := os.ReadFile(byApp["a.apk"].Out)
	if err != nil {
		t.Fatal(err)
	}
	dupOut, err := os.ReadFile(byApp["dup.apk"].Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aOut, dupOut) {
		t.Error("duplicate inputs produced different protected bytes")
	}
}

// TestBatchCancellation: a cancelled context still writes a valid
// partial manifest with every app marked cancelled.
func TestBatchCancellation(t *testing.T) {
	dir := t.TempDir()
	writeTestAPK(t, filepath.Join(dir, "a.apk"), "appA", 3, 1)
	writeTestAPK(t, filepath.Join(dir, "b.apk"), "appB", 4, 1)
	manifest := filepath.Join(dir, "m.json")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, &out, []string{"-batch", dir, "-manifest", manifest, "-workers", "2"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var m batchManifest
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("partial manifest is not valid JSON: %v", err)
	}
	if !m.Cancelled || len(m.Apps) != 2 {
		t.Fatalf("manifest: %+v", m)
	}
	for _, e := range m.Apps {
		if e.Status != "cancelled" {
			t.Errorf("%s: status %q, want cancelled", e.App, e.Status)
		}
	}
}

// TestSingleModeMatchesLegacyFlags: the engine-backed single mode
// keeps the original CLI contract — same flags, verifiable output,
// stage timings printed.
func TestSingleModePrintsStageTimings(t *testing.T) {
	dir := t.TempDir()
	in := writeTestAPK(t, filepath.Join(dir, "app.apk"), "cli", 3, 1)
	out := filepath.Join(dir, "prot.apk")
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, []string{
		"-in", in, "-out", out, "-keyseed", "1", "-profile-events", "800",
	}); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"unpack", "profile", "analyze", "construct", "stego", "validate", "repack"} {
		if !strings.Contains(buf.String(), stage) {
			t.Errorf("single-mode output missing stage %q:\n%s", stage, buf.String())
		}
	}
}
