// Command bombdroid protects an app package with logic bombs — the
// paper's tool, end to end (Fig. 1): unpack the .apk, extract the
// public key from CERT.RSA, profile, instrument, and write the
// protected package back out.
//
// Usage:
//
//	bombdroid -in app.apk -out protected.apk [-keyseed N] [-alpha F]
//	          [-single-trigger] [-no-weave] [-report report.txt]
//
// The input package must be signed; the developer key (regenerated
// from -keyseed, matching cmd/apkgen) re-signs the output, mirroring
// the paper's "sent to the legitimate developer to sign" step.
package main

import (
	"flag"
	"fmt"
	"os"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/core"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/vm"
)

func main() {
	in := flag.String("in", "", "input .apk (signed)")
	out := flag.String("out", "", "output .apk (protected, re-signed)")
	keySeed := flag.Int64("keyseed", 1, "developer key seed (must match the signer of -in)")
	alpha := flag.Float64("alpha", 0.25, "fraction of candidate methods given artificial QCs")
	single := flag.Bool("single-trigger", false, "disable inner (environment) triggers")
	noWeave := flag.Bool("no-weave", false, "disable code weaving")
	profileEvents := flag.Int("profile-events", 10_000, "profiling events for hot-method detection")
	domain := flag.Int64("domain", 64, "handler parameter domain for profiling")
	reportPath := flag.String("report", "", "write the bomb inventory here")
	seed := flag.Int64("seed", 42, "instrumentation seed")
	flag.Parse()

	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *keySeed, *alpha, *single, *noWeave, *profileEvents, *domain, *reportPath, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "bombdroid:", err)
		os.Exit(1)
	}
}

func run(in, out string, keySeed int64, alpha float64, single, noWeave bool,
	profileEvents int, domain int64, reportPath string, seed int64) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	pkg, err := apk.Unpack(data)
	if err != nil {
		return err
	}
	if err := pkg.Verify(); err != nil {
		return fmt.Errorf("input package does not verify: %w", err)
	}
	devKey, err := apk.NewKeyPair(keySeed)
	if err != nil {
		return err
	}

	// Profiling pass (paper §7.1).
	profVM, err := vm.New(pkg, android.EmulatorLab(1)[0], vm.Options{Seed: seed, Profile: true})
	if err != nil {
		return err
	}
	file, err := pkg.DexFile()
	if err != nil {
		return err
	}
	var watch []string
	for _, c := range file.Classes {
		for _, f := range c.Fields {
			watch = append(watch, c.Name+"."+f.Name)
		}
	}
	profile, fieldVals := fuzz.Profile(profVM, domain, profileEvents, watch, seed)

	protected, res, err := core.ProtectPackage(pkg, devKey, core.Options{
		Seed:          seed,
		Alpha:         alpha,
		SingleTrigger: single,
		NoWeave:       noWeave,
		Profile:       profile,
		FieldValues:   fieldVals,
	})
	if err != nil {
		return err
	}
	packed, err := apk.Pack(protected)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, packed, 0o644); err != nil {
		return err
	}

	st := res.Stats
	fmt.Printf("protected %s -> %s\n", in, out)
	fmt.Printf("  methods=%d candidates=%d (hot excluded: %d)\n", st.Methods, st.Candidates, st.HotExcluded)
	fmt.Printf("  bombs: %d existing + %d artificial (+%d bogus), %d woven\n",
		st.BombsExisting, st.BombsArtificial, st.BombsBogus, st.Woven)
	fmt.Printf("  code: %d -> %d instructions, %d payload bytes\n", st.InstrBefore, st.InstrAfter, st.BlobBytes)

	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, b := range res.Bombs {
			fmt.Fprintf(f, "%s\tmethod=%s\tsource=%s\tstrength=%s\tdetect=%s\tresponse=%s\twoven=%v\tinner=%q\n",
				b.ID, b.Method, b.Source, b.Strength, b.Detect, b.Response, b.Woven, b.Inner.String())
		}
	}
	return nil
}
