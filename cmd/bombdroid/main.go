// Command bombdroid protects an app package with logic bombs — the
// paper's tool, end to end (Fig. 1): unpack the .apk, extract the
// public key from CERT.RSA, profile, instrument, and write the
// protected package back out.
//
// Usage:
//
//	bombdroid -in app.apk -out protected.apk [-keyseed N] [-alpha F]
//	          [-single-trigger] [-no-weave] [-report report.txt]
//	bombdroid -batch corpus/ -outdir protected/ [-workers N]
//	          [-manifest manifest.json] [protection flags as above]
//
// The input packages must be signed; the developer key (regenerated
// from -keyseed, matching cmd/apkgen) re-signs the output, mirroring
// the paper's "sent to the legitimate developer to sign" step.
//
// -batch protects every *.apk in a directory through the staged
// engine over a shared worker pool and artifact cache, so duplicate
// inputs cost one pipeline run. Each app is isolated: one bad package
// records an error entry and the rest proceed. Ctrl-C cancels
// gracefully — in-flight apps stop at their next pipeline stage, and
// the JSON manifest (per-app status, per-stage wall times, cache
// hit/miss counts) is still written for everything that ran.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"bombdroid/internal/apk"
	"bombdroid/internal/artifact"
	"bombdroid/internal/core"
	"bombdroid/internal/exp"
	"bombdroid/internal/obs"
)

// cliConfig is the parsed flag set shared by single and batch mode.
type cliConfig struct {
	in, out       string
	batch, outDir string
	manifest      string
	reportPath    string
	keySeed       int64
	alpha         float64
	single        bool
	noWeave       bool
	profileEvents int
	domain        int64
	seed          int64
	workers       int
}

func (c cliConfig) engine(cache *artifact.Store, reg *obs.Registry) *core.Engine {
	return &core.Engine{
		Opts: core.Options{
			Seed:          c.seed,
			Alpha:         c.alpha,
			SingleTrigger: c.single,
			NoWeave:       c.noWeave,
		},
		Prof: core.ProfileConfig{
			Events: c.profileEvents,
			Domain: c.domain,
			Seed:   c.seed,
		},
		Cache: cache,
		Obs:   reg,
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "bombdroid:", err)
		os.Exit(1)
	}
}

// run parses flags and dispatches to single or batch mode; main is
// just signal and exit-code plumbing around it so tests can call run
// directly with their own context.
func run(ctx context.Context, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("bombdroid", flag.ContinueOnError)
	var c cliConfig
	fs.StringVar(&c.in, "in", "", "input .apk (signed)")
	fs.StringVar(&c.out, "out", "", "output .apk (protected, re-signed)")
	fs.StringVar(&c.batch, "batch", "", "protect every *.apk in this directory")
	fs.StringVar(&c.outDir, "outdir", "", "batch output directory (default: <batch>/protected)")
	fs.StringVar(&c.manifest, "manifest", "", "batch manifest JSON path (default: <outdir>/manifest.json)")
	fs.Int64Var(&c.keySeed, "keyseed", 1, "developer key seed (must match the signer of the inputs)")
	fs.Float64Var(&c.alpha, "alpha", 0.25, "fraction of candidate methods given artificial QCs")
	fs.BoolVar(&c.single, "single-trigger", false, "disable inner (environment) triggers")
	fs.BoolVar(&c.noWeave, "no-weave", false, "disable code weaving")
	fs.IntVar(&c.profileEvents, "profile-events", 10_000, "profiling events for hot-method detection")
	fs.Int64Var(&c.domain, "domain", 64, "handler parameter domain for profiling")
	fs.StringVar(&c.reportPath, "report", "", "write the bomb inventory here (single mode)")
	fs.Int64Var(&c.seed, "seed", 42, "instrumentation seed")
	fs.IntVar(&c.workers, "workers", 0, "batch workers (0 = all cores, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if c.batch != "" {
		return runBatch(ctx, out, c)
	}
	if c.in == "" || c.out == "" {
		return errors.New("need -in and -out (or -batch DIR)")
	}
	return runSingle(ctx, out, c)
}

// readSigned loads and verifies one package from disk.
func readSigned(path string) (*apk.Package, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pkg, err := apk.Unpack(data)
	if err != nil {
		return nil, err
	}
	if err := pkg.Verify(); err != nil {
		return nil, fmt.Errorf("input package does not verify: %w", err)
	}
	return pkg, nil
}

// protectSigned runs one verified package through the engine and
// re-signs the result with the developer key, enforcing the paper's
// rule that only the legitimate developer's key may sign.
func protectSigned(ctx context.Context, eng *core.Engine, pkg *apk.Package, devKey *apk.KeyPair) (*apk.Package, *core.Protected, error) {
	if pkg.PublicKeyHex() != devKey.PublicKeyHex() {
		return nil, nil, fmt.Errorf("developer key (seed) does not match the package certificate")
	}
	prot, err := eng.Run(ctx, pkg)
	if err != nil {
		return nil, nil, err
	}
	signed, err := apk.Sign(prot.Unsigned, devKey)
	if err != nil {
		return nil, nil, err
	}
	return signed, prot, nil
}

func runSingle(ctx context.Context, out io.Writer, c cliConfig) error {
	pkg, err := readSigned(c.in)
	if err != nil {
		return err
	}
	devKey, err := apk.NewKeyPair(c.keySeed)
	if err != nil {
		return err
	}
	signed, prot, err := protectSigned(ctx, c.engine(nil, nil), pkg, devKey)
	if err != nil {
		return err
	}
	packed, err := apk.Pack(signed)
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.out, packed, 0o644); err != nil {
		return err
	}

	st := prot.Result.Stats
	fmt.Fprintf(out, "protected %s -> %s\n", c.in, c.out)
	fmt.Fprintf(out, "  methods=%d candidates=%d (hot excluded: %d)\n", st.Methods, st.Candidates, st.HotExcluded)
	fmt.Fprintf(out, "  bombs: %d existing + %d artificial (+%d bogus), %d woven\n",
		st.BombsExisting, st.BombsArtificial, st.BombsBogus, st.Woven)
	fmt.Fprintf(out, "  code: %d -> %d instructions, %d payload bytes\n", st.InstrBefore, st.InstrAfter, st.BlobBytes)
	for _, t := range prot.Info.Stages {
		fmt.Fprintf(out, "  stage %-9s %8.2fms\n", t.Stage, float64(t.WallNs)/1e6)
	}

	if c.reportPath != "" {
		f, err := os.Create(c.reportPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, b := range prot.Result.Bombs {
			fmt.Fprintf(f, "%s\tmethod=%s\tsource=%s\tstrength=%s\tdetect=%s\tresponse=%s\twoven=%v\tinner=%q\n",
				b.ID, b.Method, b.Source, b.Strength, b.Detect, b.Response, b.Woven, b.Inner.String())
		}
	}
	return nil
}

// batchEntry is one app's row in the batch manifest.
type batchEntry struct {
	App         string             `json:"app"`
	Status      string             `json:"status"` // ok | error | cancelled
	Error       string             `json:"error,omitempty"`
	Out         string             `json:"out,omitempty"`
	WallMs      int64              `json:"wall_ms"`
	Stages      []core.StageTiming `json:"stages,omitempty"`
	CacheHits   int                `json:"cache_hits"`
	CacheMisses int                `json:"cache_misses"`
}

// batchManifest is the JSON document -batch writes next to its
// outputs: per-app outcomes plus the shared artifact-store totals.
type batchManifest struct {
	Corpus    string         `json:"corpus"`
	Workers   int            `json:"workers"`
	Cancelled bool           `json:"cancelled,omitempty"`
	WallMs    int64          `json:"wall_ms"`
	Cache     artifact.Stats `json:"cache"`
	Apps      []batchEntry   `json:"apps"`
}

// batchCacheBytes bounds the shared artifact store; a corpus whose
// protected artifacts outgrow it just re-runs the evicted stages.
const batchCacheBytes = 256 << 20

func runBatch(ctx context.Context, out io.Writer, c cliConfig) error {
	paths, err := filepath.Glob(filepath.Join(c.batch, "*.apk"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return fmt.Errorf("no .apk files in %s", c.batch)
	}
	if c.outDir == "" {
		c.outDir = filepath.Join(c.batch, "protected")
	}
	if err := os.MkdirAll(c.outDir, 0o755); err != nil {
		return err
	}
	if c.manifest == "" {
		c.manifest = filepath.Join(c.outDir, "manifest.json")
	}
	devKey, err := apk.NewKeyPair(c.keySeed)
	if err != nil {
		return err
	}

	// One engine for the whole corpus: Engine.Run is safe for
	// concurrent use, and the shared store deduplicates identical
	// inputs across workers (the second copy is a result-cache hit).
	reg := obs.NewRegistry()
	cache := artifact.NewStore(batchCacheBytes)
	eng := c.engine(cache, reg)
	sc := exp.Scale{Workers: c.workers, Obs: reg}

	t0 := time.Now()
	entries, poolErr := exp.ForIndexed(ctx, sc, len(paths), func(i int) (batchEntry, error) {
		// Per-app isolation: every failure becomes a manifest entry,
		// never an error that would abort the rest of the corpus.
		return protectPath(ctx, eng, devKey, paths[i], c.outDir), nil
	})
	// protectPath never returns an error, so a pool error can only be
	// the context's; anything else is a programming error worth
	// surfacing before the manifest pretends the batch ran.
	if poolErr != nil && ctx.Err() == nil {
		return poolErr
	}
	cancelled := ctx.Err() != nil
	for i := range entries {
		if entries[i].Status == "" {
			// Never claimed before the pool stopped.
			entries[i] = batchEntry{App: filepath.Base(paths[i]), Status: "cancelled"}
		}
	}

	m := batchManifest{
		Corpus:    c.batch,
		Workers:   sc.Workers,
		Cancelled: cancelled,
		WallMs:    time.Since(t0).Milliseconds(),
		Cache:     cache.Stats(),
		Apps:      entries,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.manifest, append(data, '\n'), 0o644); err != nil {
		return err
	}

	var ok, failed, skipped int
	for _, e := range entries {
		switch e.Status {
		case "ok":
			ok++
		case "error":
			failed++
		default:
			skipped++
		}
	}
	st := cache.Stats()
	fmt.Fprintf(out, "batch %s: %d ok, %d failed, %d cancelled (%d apps, %d workers)\n",
		c.batch, ok, failed, skipped, len(paths), sc.Workers)
	fmt.Fprintf(out, "  cache: %d hits, %d misses; manifest: %s\n", st.Hits, st.Misses, c.manifest)
	if cancelled {
		return context.Canceled
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d apps failed; see %s", failed, len(paths), c.manifest)
	}
	return nil
}

// protectPath protects one corpus member and reports the outcome as a
// manifest entry.
func protectPath(ctx context.Context, eng *core.Engine, devKey *apk.KeyPair, path, outDir string) batchEntry {
	e := batchEntry{App: filepath.Base(path)}
	t0 := time.Now()
	defer func() { e.WallMs = time.Since(t0).Milliseconds() }()

	fail := func(err error) batchEntry {
		if ctx.Err() != nil {
			e.Status = "cancelled"
			return e
		}
		e.Status = "error"
		e.Error = err.Error()
		return e
	}
	pkg, err := readSigned(path)
	if err != nil {
		return fail(err)
	}
	signed, prot, err := protectSigned(ctx, eng, pkg, devKey)
	if err != nil {
		return fail(err)
	}
	packed, err := apk.Pack(signed)
	if err != nil {
		return fail(err)
	}
	outPath := filepath.Join(outDir, strings.TrimSuffix(e.App, ".apk")+".prot.apk")
	if err := os.WriteFile(outPath, packed, 0o644); err != nil {
		return fail(err)
	}
	e.Status = "ok"
	e.Out = outPath
	e.Stages = prot.Info.Stages
	e.CacheHits = prot.Info.CacheHits
	e.CacheMisses = prot.Info.CacheMisses
	return e
}
