// Command apkgen generates evaluation apps as signed .apk files: the
// paper's eight named apps or arbitrary corpus apps.
//
// Usage:
//
//	apkgen -name AndroFish -out androfish.apk [-keyseed N]
//	apkgen -category Game -index 3 -out game3.apk
//	apkgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
)

func main() {
	name := flag.String("name", "", "named evaluation app (see -list)")
	category := flag.String("category", "", "corpus category")
	index := flag.Int("index", 0, "app index within the category")
	out := flag.String("out", "", "output .apk path")
	keySeed := flag.Int64("keyseed", 1, "developer signing key seed")
	list := flag.Bool("list", false, "list named apps and categories")
	flag.Parse()

	if *list {
		fmt.Println("named apps:")
		for _, n := range appgen.NamedApps {
			fmt.Println("  ", n)
		}
		fmt.Println("categories:")
		for _, c := range appgen.Categories {
			fmt.Printf("   %-14s (%d apps, ~%d LOC)\n", c.Name, c.Apps, c.AvgLOC)
		}
		return
	}
	if *out == "" || (*name == "" && *category == "") {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*name, *category, *index, *out, *keySeed); err != nil {
		fmt.Fprintln(os.Stderr, "apkgen:", err)
		os.Exit(1)
	}
}

func run(name, category string, index int, out string, keySeed int64) error {
	var app *appgen.App
	var err error
	switch {
	case name != "":
		app, err = appgen.NamedApp(name)
	default:
		var spec *appgen.CategorySpec
		for i := range appgen.Categories {
			if appgen.Categories[i].Name == category {
				spec = &appgen.Categories[i]
			}
		}
		if spec == nil {
			return fmt.Errorf("unknown category %q", category)
		}
		if index < 0 || index >= spec.Apps {
			return fmt.Errorf("index %d outside [0,%d)", index, spec.Apps)
		}
		app, err = appgen.Generate(appgen.CategoryConfig(*spec, index))
	}
	if err != nil {
		return err
	}

	key, err := apk.NewKeyPair(keySeed)
	if err != nil {
		return err
	}
	pkg, err := apk.Sign(apk.Build(app.Name, app.File, apk.Resources{
		Strings: []string{"Welcome to " + app.Name, "Settings", "About"},
		Author:  app.Name + " devs",
		Icon:    []byte{0x89, 'P', 'N', 'G'},
	}), key)
	if err != nil {
		return err
	}
	data, err := apk.Pack(pkg)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s (%d LOC, %d methods, %d handlers, key seed %d)\n",
		out, app.Name, app.LOC, len(app.File.Methods()), len(app.Handlers), keySeed)
	return nil
}
