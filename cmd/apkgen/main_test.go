package main

import (
	"os"
	"path/filepath"
	"testing"

	"bombdroid/internal/apk"
)

func TestRunNamedApp(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fish.apk")
	if err := run("AndroFish", "", 0, out, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := pkg.Verify(); err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "AndroFish" {
		t.Errorf("name = %q", pkg.Name)
	}
}

func TestRunCategoryApp(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "game.apk")
	if err := run("", "Game", 3, out, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "NoSuchCategory", 0, filepath.Join(dir, "x.apk"), 1); err == nil {
		t.Error("unknown category must fail")
	}
	if err := run("", "Game", 9999, filepath.Join(dir, "x.apk"), 1); err == nil {
		t.Error("out-of-range index must fail")
	}
	if err := run("NoSuchApp", "", 0, filepath.Join(dir, "x.apk"), 1); err == nil {
		t.Error("unknown named app must fail")
	}
}
