package main

import (
	"os"
	"path/filepath"
	"testing"

	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
)

func writeAPK(t *testing.T, dir string) string {
	t.Helper()
	app, err := appgen.Generate(appgen.Config{Name: "emu", Seed: 4, TargetLOC: 900})
	if err != nil {
		t.Fatal(err)
	}
	key, err := apk.NewKeyPair(2)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := apk.Sign(apk.Build("emu", app.File, apk.Resources{Strings: []string{"x"}}), key)
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Pack(pkg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "emu.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllFuzzersAndDevices(t *testing.T) {
	dir := t.TempDir()
	path := writeAPK(t, dir)
	for _, fz := range []string{"monkey", "puma", "hooker", "dynodroid"} {
		if err := run(path, "emulator", fz, 1, 1, 64, false, "", false); err != nil {
			t.Errorf("fuzzer %s: %v", fz, err)
		}
	}
	if err := run(path, "population", "dynodroid", 1, 2, 64, true, "", false); err != nil {
		t.Errorf("population device: %v", err)
	}
	for _, profile := range []string{"none", "mild", "harsh"} {
		if err := run(path, "emulator", "dynodroid", 1, 3, 64, false, profile, false); err != nil {
			t.Errorf("chaos profile %s: %v", profile, err)
		}
	}
	if err := run(path, "emulator", "dynodroid", 1, 5, 64, false, "", true); err != nil {
		t.Errorf("obs dump run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	path := writeAPK(t, dir)
	if err := run(path, "emulator", "nosuch", 1, 1, 64, false, "", false); err == nil {
		t.Error("unknown fuzzer must fail")
	}
	if err := run(path, "toaster", "monkey", 1, 1, 64, false, "", false); err == nil {
		t.Error("unknown device must fail")
	}
	if err := run(filepath.Join(dir, "nope.apk"), "emulator", "monkey", 1, 1, 64, false, "", false); err == nil {
		t.Error("missing file must fail")
	}
	if err := run(path, "emulator", "monkey", 1, 1, 64, false, "apocalyptic", false); err == nil {
		t.Error("unknown chaos profile must fail")
	}
}
