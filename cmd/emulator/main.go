// Command emulator installs an .apk on a simulated device and drives
// it — with a fuzzer (attacker lab) or as a simulated user session —
// reporting triggered bombs, detections, and responses.
//
// Usage:
//
//	emulator -apk app.apk [-device emulator|population] [-fuzzer dynodroid]
//	         [-minutes 10] [-seed 1] [-as-user] [-chaos mild|harsh] [-obs]
//
// With -chaos the app runs fail-closed under the named fault profile:
// sealed payloads are corrupted at decrypt time and environment reads
// misreported, with every contained fault tallied at exit.
//
// With -obs the VM and the fuzz driver are instrumented and the run's
// metrics (per-opcode execution counts, dispatch-step histogram,
// response/fault counters, fuzz span) are dumped in Prometheus text
// format at exit.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/chaos"
	"bombdroid/internal/fuzz"
	"bombdroid/internal/obs"
	"bombdroid/internal/vm"
)

func main() {
	apkPath := flag.String("apk", "", "package to run")
	deviceKind := flag.String("device", "emulator", "emulator or population")
	fuzzer := flag.String("fuzzer", "dynodroid", "monkey, puma, hooker, or dynodroid")
	minutes := flag.Int("minutes", 10, "virtual run length")
	seed := flag.Int64("seed", 1, "seed")
	domain := flag.Int64("domain", 64, "handler parameter domain")
	unverified := flag.Bool("allow-unverified", false, "skip signature verification (attacker lab)")
	chaosName := flag.String("chaos", "", "fault profile: mild or harsh (fail-closed chaos run)")
	obsDump := flag.Bool("obs", false, "instrument the run and dump metrics at exit")
	flag.Parse()

	if *apkPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*apkPath, *deviceKind, *fuzzer, *minutes, *seed, *domain, *unverified, *chaosName, *obsDump); err != nil {
		fmt.Fprintln(os.Stderr, "emulator:", err)
		os.Exit(1)
	}
}

func run(apkPath, deviceKind, fuzzer string, minutes int, seed, domain int64, unverified bool, chaosName string, obsDump bool) error {
	data, err := os.ReadFile(apkPath)
	if err != nil {
		return err
	}
	pkg, err := apk.Unpack(data)
	if err != nil {
		return err
	}

	var dev *android.Device
	switch deviceKind {
	case "emulator":
		dev = android.EmulatorLab(1)[0]
	case "population":
		dev = android.SamplePopulation("cli-user", rand.New(rand.NewSource(seed)))
	default:
		return fmt.Errorf("unknown device kind %q", deviceKind)
	}

	vmOpts := vm.Options{Seed: seed, Profile: true}
	var reg *obs.Registry
	if obsDump {
		reg = obs.NewRegistry()
		vmOpts.Obs = reg
	}
	var inj *chaos.Injector
	if chaosName != "" {
		var profile chaos.Profile
		switch strings.ToLower(chaosName) {
		case "none":
			profile = chaos.None
		case "mild":
			profile = chaos.Mild
		case "harsh":
			profile = chaos.Harsh
		default:
			return fmt.Errorf("unknown chaos profile %q (want mild or harsh)", chaosName)
		}
		inj = chaos.NewInjector(profile, seed)
		vmOpts.FailClosed = true
		vmOpts.BlobFault = inj.BlobFault()
	}

	var v *vm.VM
	if unverified {
		v, err = vm.NewUnverified(pkg, dev, vmOpts)
	} else {
		v, err = vm.New(pkg, dev, vmOpts)
	}
	if err != nil {
		return err
	}
	if inj != nil {
		inj.ApplyEnvFaults(v)
	}

	var fz fuzz.Fuzzer
	switch strings.ToLower(fuzzer) {
	case "monkey":
		fz = fuzz.Monkey{}
	case "puma":
		fz = fuzz.PUMA{}
	case "hooker":
		fz = &fuzz.AndroidHooker{}
	case "dynodroid":
		fz = fuzz.NewDynodroid()
	default:
		return fmt.Errorf("unknown fuzzer %q", fuzzer)
	}

	fmt.Printf("running %s on %s with %s for %d virtual minutes\n",
		pkg.Name, dev, fz.Name(), minutes)
	res := fuzz.Run(v, fz, domain, fuzz.Options{
		DurationMs: int64(minutes) * 60_000,
		Seed:       seed,
		Obs:        reg,
	})

	fmt.Printf("events: %d  (abnormal exits: %d)\n", res.Events, res.AbnormalExits)
	fmt.Printf("outer triggers satisfied: %d\n", len(res.OuterSatisfied))
	fmt.Printf("bombs fully triggered: %d\n", len(res.DetectionRuns))
	for id, n := range res.DetectionRuns {
		fmt.Printf("  %s: detection ran %d times\n", id, n)
	}
	for _, r := range res.Responses {
		fmt.Printf("response at %.1fs: %s %s (bomb %s)\n",
			float64(r.TimeMillis)/1000, r.Kind, r.Info, r.BombID)
	}
	if len(res.Responses) == 0 {
		fmt.Println("no responses fired")
	}
	if inj != nil {
		faults := v.Faults()
		fmt.Printf("chaos: %d bomb-path faults contained (fail-closed); injector: %s\n",
			len(faults), inj.CountsString())
		for _, f := range faults {
			fmt.Printf("  fault at %.1fs: %s blob=%d bomb=%s: %s\n",
				float64(f.TimeMillis)/1000, f.Kind, f.Blob, f.Bomb, f.Err)
		}
	}
	if reg != nil {
		fmt.Println("\n--- metrics (prometheus text) ---")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
