// Command dexasm converts between the textual assembly form and the
// binary GDEX format, and disassembles the classes.dex inside an .apk.
//
// Usage:
//
//	dexasm -asm prog.s -out prog.gdex       # assemble
//	dexasm -dis prog.gdex                   # disassemble a dex file
//	dexasm -dis app.apk                     # disassemble a package
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bombdroid/internal/apk"
	"bombdroid/internal/dex"
)

func main() {
	asmPath := flag.String("asm", "", "assembly source to assemble")
	disPath := flag.String("dis", "", ".gdex or .apk to disassemble")
	out := flag.String("out", "", "output path for -asm")
	flag.Parse()

	switch {
	case *asmPath != "":
		if *out == "" {
			fmt.Fprintln(os.Stderr, "dexasm: -asm needs -out")
			os.Exit(2)
		}
		if err := assemble(*asmPath, *out); err != nil {
			fmt.Fprintln(os.Stderr, "dexasm:", err)
			os.Exit(1)
		}
	case *disPath != "":
		if err := disassemble(*disPath); err != nil {
			fmt.Fprintln(os.Stderr, "dexasm:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func assemble(in, out string) error {
	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	f, err := dex.Assemble(string(src))
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, dex.Encode(f), 0o644); err != nil {
		return err
	}
	fmt.Printf("assembled %s -> %s (%d classes, %d instructions)\n",
		in, out, len(f.Classes), f.InstrCount())
	return nil
}

func disassemble(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f *dex.File
	if strings.HasSuffix(path, ".apk") {
		pkg, err := apk.Unpack(data)
		if err != nil {
			return err
		}
		if f, err = pkg.DexFile(); err != nil {
			return err
		}
	} else if f, err = dex.Decode(data); err != nil {
		return err
	}
	fmt.Print(dex.Disassemble(f))
	return nil
}
