package main

import (
	"os"
	"path/filepath"
	"testing"
)

const src = `
class T
method m 0
  const-int r0, 7
  return r0
end
endclass
`

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	asmPath := filepath.Join(dir, "t.s")
	outPath := filepath.Join(dir, "t.gdex")
	if err := os.WriteFile(asmPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := assemble(asmPath, outPath); err != nil {
		t.Fatal(err)
	}
	if err := disassemble(outPath); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	if err := assemble(filepath.Join(dir, "missing.s"), filepath.Join(dir, "o")); err == nil {
		t.Error("missing source must fail")
	}
	bad := filepath.Join(dir, "bad.s")
	os.WriteFile(bad, []byte("class C\nmethod"), 0o644)
	if err := assemble(bad, filepath.Join(dir, "o")); err == nil {
		t.Error("bad source must fail")
	}
	junk := filepath.Join(dir, "junk.gdex")
	os.WriteFile(junk, []byte("xx"), 0o644)
	if err := disassemble(junk); err == nil {
		t.Error("junk dex must fail")
	}
	junkApk := filepath.Join(dir, "junk.apk")
	os.WriteFile(junkApk, []byte("xx"), 0o644)
	if err := disassemble(junkApk); err == nil {
		t.Error("junk apk must fail")
	}
}
