// Command report regenerates the paper's tables and figures.
//
// Usage:
//
//	report [-scale quick|full] [-workers N] [-table N] [-figure N] [-extra name] [-all]
//	       [-metrics out.json] [-debug-addr :6060]
//
// With -all (the default when nothing is selected) every table, figure
// and extra experiment is produced in order. Extras: fp (false
// positives), size (code size), human (analyst study), matrix
// (attack × protection resilience matrix), ablate (design-choice
// ablations), chaos (fault-injection resilience campaigns).
//
// -workers bounds the evaluation worker pool: 0 (default) uses all
// available cores, 1 forces the fully serial path. Either setting
// produces byte-identical output; -workers only changes wall-clock.
//
// -metrics turns on the obs layer for the whole run (VM opcode
// profiles, pool utilization, campaign counters, report-pipeline
// counters, prepare spans) and writes the JSON snapshot to the given
// path at exit. -debug-addr serves live observability over HTTP while
// the run executes: /metrics (Prometheus text), /metrics.json,
// /debug/pprof/* and /debug/vars.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"bombdroid/internal/exp"
	"bombdroid/internal/obs"
)

// run drives the whole report generation; main is just signal and
// exit-code plumbing around it so tests can call run directly.
// Cancelling ctx (main wires it to SIGINT/SIGTERM) stops the worker
// pools from claiming further items and returns the context's error;
// a -metrics snapshot of everything finished so far is still written.
func run(ctx context.Context, out io.Writer, args []string) (err error) {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	scale := fs.String("scale", "quick", "workload scale: quick or full")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores, 1 = serial)")
	table := fs.Int("table", 0, "print one table (1-5)")
	figure := fs.Int("figure", 0, "print one figure (3-5)")
	extra := fs.String("extra", "", "print one extra: fp, size, human, matrix, ablate, chaos")
	all := fs.Bool("all", false, "print everything")
	metricsPath := fs.String("metrics", "", "collect run metrics and write the JSON snapshot to this path")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address while running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, err := scaleFor(*scale, *workers)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metricsPath != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
		sc.Obs = reg
	}
	if *debugAddr != "" {
		stop, bound, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(out, "debug endpoint listening on %s\n\n", bound)
	}
	if *metricsPath != "" {
		defer func() {
			if werr := writeMetrics(*metricsPath, reg); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	selected := *table != 0 || *figure != 0 || *extra != ""
	if !selected {
		*all = true
	}

	if *all || *table == 1 {
		rows, err := exp.Table1Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatTable1(rows))
	}
	if *all || *table == 2 {
		rows, err := exp.Table2Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatTable2(rows))
	}
	if *all || *table == 3 {
		rows, err := exp.Table3Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatTable3(rows))
	}
	if *all || *table == 4 {
		rows, err := exp.Table4Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatTable4(rows))
	}
	if *all || *table == 5 {
		rows, err := exp.Table5Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatTable5(rows))
	}
	if *all || *figure == 3 {
		series, err := exp.Figure3Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatFigure3(series))
	}
	if *all || *figure == 4 {
		rows, err := exp.Figure4Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatFigure4(rows))
	}
	if *all || *figure == 5 {
		series, err := exp.Figure5Ctx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatFigure5(series))
	}
	if *all || *extra == "fp" {
		hours := 10
		if *scale == "quick" {
			hours = 2
		}
		rows, err := exp.FalsePositivesCtx(ctx, sc, hours)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatFPResults(rows))
	}
	if *all || *extra == "size" {
		rows, avg, err := exp.CodeSizeCtx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatSizeRows(rows, avg))
	}
	if *all || *extra == "human" {
		rows, err := exp.HumanAnalystStudyCtx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatAnalystRows(rows))
	}
	if *all || *extra == "matrix" {
		rows, err := exp.ResilienceMatrixCtx(ctx, 7)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatMatrix(rows))
	}
	if *all || *extra == "ablate" {
		rows, err := exp.AblationsCtx(ctx, 11)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatAblations(rows))
	}
	if *all || *extra == "chaos" {
		rows, err := exp.ChaosResilienceCtx(ctx, sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.FormatChaos(rows))
	}
	return nil
}

// scaleFor maps the -scale and -workers flags to an exp.Scale.
func scaleFor(name string, workers int) (exp.Scale, error) {
	var sc exp.Scale
	switch name {
	case "quick":
		sc = exp.Quick()
	case "full":
		sc = exp.Full()
	default:
		return exp.Scale{}, fmt.Errorf("unknown scale %q (want quick or full)", name)
	}
	if workers < 0 {
		return exp.Scale{}, fmt.Errorf("workers must be >= 0, got %d", workers)
	}
	sc.Workers = workers
	return sc, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}
