// Command report regenerates the paper's tables and figures.
//
// Usage:
//
//	report [-scale quick|full] [-table N] [-figure N] [-extra name] [-all]
//
// With -all (the default when nothing is selected) every table, figure
// and extra experiment is produced in order. Extras: fp (false
// positives), size (code size), human (analyst study), matrix
// (attack × protection resilience matrix), ablate (design-choice
// ablations), chaos (fault-injection resilience campaigns).
package main

import (
	"flag"
	"fmt"
	"os"

	"bombdroid/internal/exp"
)

func main() {
	scale := flag.String("scale", "quick", "workload scale: quick or full")
	table := flag.Int("table", 0, "print one table (1-5)")
	figure := flag.Int("figure", 0, "print one figure (3-5)")
	extra := flag.String("extra", "", "print one extra: fp, size, human, matrix")
	all := flag.Bool("all", false, "print everything")
	flag.Parse()

	var sc exp.Scale
	switch *scale {
	case "quick":
		sc = exp.Quick()
	case "full":
		sc = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	selected := *table != 0 || *figure != 0 || *extra != ""
	if *all || !selected {
		*all = true
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		rows, err := exp.Table1(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatTable1(rows))
	}
	if *all || *table == 2 {
		rows, err := exp.Table2(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatTable2(rows))
	}
	if *all || *table == 3 {
		rows, err := exp.Table3(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatTable3(rows))
	}
	if *all || *table == 4 {
		rows, err := exp.Table4(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatTable4(rows))
	}
	if *all || *table == 5 {
		rows, err := exp.Table5(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatTable5(rows))
	}
	if *all || *figure == 3 {
		series, err := exp.Figure3(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFigure3(series))
	}
	if *all || *figure == 4 {
		rows, err := exp.Figure4(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFigure4(rows))
	}
	if *all || *figure == 5 {
		series, err := exp.Figure5(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFigure5(series))
	}
	if *all || *extra == "fp" {
		hours := 10
		if *scale == "quick" {
			hours = 2
		}
		rows, err := exp.FalsePositives(sc, hours)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatFPResults(rows))
	}
	if *all || *extra == "size" {
		rows, avg, err := exp.CodeSize(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatSizeRows(rows, avg))
	}
	if *all || *extra == "human" {
		rows, err := exp.HumanAnalystStudy(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatAnalystRows(rows))
	}
	if *all || *extra == "matrix" {
		rows, err := exp.ResilienceMatrix(7)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatMatrix(rows))
	}
	if *all || *extra == "ablate" {
		rows, err := exp.Ablations(11)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatAblations(rows))
	}
	if *all || *extra == "chaos" {
		rows, err := exp.ChaosResilience(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.FormatChaos(rows))
	}
}
