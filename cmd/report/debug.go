package main

import (
	"encoding/json"
	"fmt"
	"os"

	"bombdroid/internal/obs"
)

// writeMetrics merges the process-default registry (prepare spans)
// into the run registry, writes the JSON snapshot, and re-reads it to
// prove the file parses — the check scripts/verify.sh relies on.
func writeMetrics(path string, reg *obs.Registry) error {
	obs.Default().MergeInto(reg)
	b, err := reg.Snapshot().JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	written, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var round obs.Snapshot
	if err := json.Unmarshal(written, &round); err != nil {
		return fmt.Errorf("snapshot at %s does not round-trip: %w", path, err)
	}
	return nil
}
