package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"bombdroid/internal/obs"
)

// writeMetrics merges the process-default registry (prepare spans)
// into the run registry, writes the JSON snapshot, and re-reads it to
// prove the file parses — the check scripts/verify.sh relies on.
func writeMetrics(path string, reg *obs.Registry) error {
	obs.Default().MergeInto(reg)
	b, err := reg.Snapshot().JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	written, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var round obs.Snapshot
	if err := json.Unmarshal(written, &round); err != nil {
		return fmt.Errorf("snapshot at %s does not round-trip: %w", path, err)
	}
	return nil
}

// serveDebug exposes the run's live metrics plus the standard Go
// debug handlers on addr. It binds synchronously (so a bad address
// fails the command) and serves in the background; it returns a stop
// function that closes the server and the bound address (useful when
// addr asked for port 0). A private mux (rather than
// http.DefaultServeMux) keeps repeated runs in one process — the CLI
// tests — from panicking on duplicate registration.
func serveDebug(addr string, reg *obs.Registry) (func(), string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if b, err := reg.Snapshot().JSON(); err == nil {
			w.Write(append(b, '\n'))
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return func() { srv.Close() }, ln.Addr().String(), nil
}
