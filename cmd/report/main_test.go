package main

import (
	"bytes"
	"context"
	"errors"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bombdroid/internal/obs"
)

func TestScaleFor(t *testing.T) {
	sc, err := scaleFor("quick", 4)
	if err != nil {
		t.Fatalf("scaleFor(quick, 4): %v", err)
	}
	if sc.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", sc.Workers)
	}
	if len(sc.Apps) == 0 {
		t.Fatal("quick scale has no apps")
	}
	if _, err := scaleFor("huge", 0); err == nil {
		t.Fatal("scaleFor(huge) should fail")
	}
	if _, err := scaleFor("quick", -1); err == nil {
		t.Fatal("scaleFor with negative workers should fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-scale", "huge"}); err == nil {
		t.Fatal("run with unknown scale should fail")
	}
	if err := run(context.Background(), &out, []string{"-no-such-flag"}); err == nil {
		t.Fatal("run with unknown flag should fail")
	}
}

// TestRunTable2WorkersIdentical exercises the real pipeline end to end
// and pins the -workers contract at the CLI boundary: serial and
// parallel runs print byte-identical tables. The second run rides the
// warm Prepare cache, so the cost is one prepared scale, not two.
func TestRunTable2WorkersIdentical(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run(context.Background(), &serial, []string{"-table", "2", "-workers", "1"}); err != nil {
		t.Fatalf("run -workers 1: %v", err)
	}
	if !strings.Contains(serial.String(), "Table 2") {
		t.Fatalf("output missing Table 2 header:\n%s", serial.String())
	}
	if err := run(context.Background(), &parallel, []string{"-table", "2", "-workers", "8"}); err != nil {
		t.Fatalf("run -workers 8: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("serial and parallel output differ:\n--- workers=1\n%s\n--- workers=8\n%s",
			serial.String(), parallel.String())
	}
}

// TestRunMetricsSnapshot runs one table with -metrics and checks the
// snapshot file parses and carries the layers the run exercised:
// campaign counters, the Table 3 trigger-latency histogram, VM opcode
// counts, and pool metrics.
func TestRunMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-table", "3", "-metrics", path}); err != nil {
		t.Fatalf("run -metrics: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Counters["sim_sessions_total"] == 0 {
		t.Error("snapshot missing sim_sessions_total")
	}
	if snap.Counters["exp_pool_tasks_total"] == 0 {
		t.Error("snapshot missing exp_pool_tasks_total")
	}
	if h, ok := snap.Histograms["sim_trigger_latency_ms"]; !ok || h.Count == 0 {
		t.Error("snapshot missing sim_trigger_latency_ms observations")
	}
	found := false
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "vm_op_total{") && v > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("snapshot has no per-opcode VM counts")
	}
}

// TestServeDebugEndpoints scrapes every endpoint of the debug server
// directly (no race against a finishing run).
func TestServeDebugEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("probe_total").Add(3)
	reg.Histogram("probe_ms", []int64{10}).Observe(7)
	stop, addr, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"# TYPE probe_total counter", "probe_total 3", "probe_ms_count 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if snap.Counters["probe_total"] != 3 {
		t.Errorf("probe_total = %d, want 3", snap.Counters["probe_total"])
	}
	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars status = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

// TestRunDebugAddr pins the CLI wiring: a run with -debug-addr binds,
// reports the bound address, and completes.
func TestRunDebugAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-table", "2", "-debug-addr", "127.0.0.1:0"}); err != nil {
		t.Fatalf("run -debug-addr: %v", err)
	}
	if !strings.Contains(out.String(), "debug endpoint listening on 127.0.0.1:") {
		t.Fatalf("missing bound-address line:\n%s", out.String())
	}
}

// TestRunCancelled: a cancelled context aborts report generation with
// the context's error instead of producing output.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if err := run(ctx, &out, []string{"-table", "3"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("run under cancelled ctx: err = %v, want context.Canceled", err)
	}
}
