package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestScaleFor(t *testing.T) {
	sc, err := scaleFor("quick", 4)
	if err != nil {
		t.Fatalf("scaleFor(quick, 4): %v", err)
	}
	if sc.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", sc.Workers)
	}
	if len(sc.Apps) == 0 {
		t.Fatal("quick scale has no apps")
	}
	if _, err := scaleFor("huge", 0); err == nil {
		t.Fatal("scaleFor(huge) should fail")
	}
	if _, err := scaleFor("quick", -1); err == nil {
		t.Fatal("scaleFor with negative workers should fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-scale", "huge"}); err == nil {
		t.Fatal("run with unknown scale should fail")
	}
	if err := run(&out, []string{"-no-such-flag"}); err == nil {
		t.Fatal("run with unknown flag should fail")
	}
}

// TestRunTable2WorkersIdentical exercises the real pipeline end to end
// and pins the -workers contract at the CLI boundary: serial and
// parallel runs print byte-identical tables. The second run rides the
// warm Prepare cache, so the cost is one prepared scale, not two.
func TestRunTable2WorkersIdentical(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run(&serial, []string{"-table", "2", "-workers", "1"}); err != nil {
		t.Fatalf("run -workers 1: %v", err)
	}
	if !strings.Contains(serial.String(), "Table 2") {
		t.Fatalf("output missing Table 2 header:\n%s", serial.String())
	}
	if err := run(&parallel, []string{"-table", "2", "-workers", "8"}); err != nil {
		t.Fatalf("run -workers 8: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("serial and parallel output differ:\n--- workers=1\n%s\n--- workers=8\n%s",
			serial.String(), parallel.String())
	}
}
