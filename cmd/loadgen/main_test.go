package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"bombdroid/internal/market"
	"bombdroid/internal/report"
)

// newMarket spins an in-process marketd-equivalent for the hose to
// shoot at.
func newMarket(t *testing.T, cfg market.Config) *httptest.Server {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	st, _, err := market.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(market.NewHandler(st))
	t.Cleanup(func() { srv.Close(); st.Close() })
	return srv
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
	if err := run(context.Background(), &out, nil); err == nil {
		t.Fatal("missing -url should fail")
	}
	srv := newMarket(t, market.Config{})
	if err := run(context.Background(), &out, []string{"-url", srv.URL, "-campaign", "x", "-profile", "bogus"}); err == nil {
		t.Fatal("unknown profile should fail")
	}
}

// TestFireHose: a small hose run lands every event exactly once and
// prints a parseable summary.
func TestFireHose(t *testing.T) {
	srv := newMarket(t, market.Config{Shards: 2})
	var out bytes.Buffer
	args := []string{"-url", srv.URL, "-events", "2000", "-batch", "100", "-workers", "3", "-run", "t1"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatalf("run: %v", err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary does not parse: %v\n%s", err, out.String())
	}
	if s.Events != 2000 || s.Accepted != 2000 || s.Duplicates != 0 {
		t.Errorf("summary = %+v, want 2000 accepted, 0 duplicates", s)
	}
	if s.EventsPerSec <= 0 || s.P99Ms <= 0 {
		t.Errorf("summary missing rates: %+v", s)
	}

	// Same -run label again: all duplicates, still all accounted for.
	out.Reset()
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Accepted != 0 || s.Duplicates != 2000 {
		t.Errorf("rerun summary = %+v, want all duplicates", s)
	}
}

// TestFireHoseBackpressure: a saturable store turns 429s into retries,
// not losses — the summary still accounts for every event.
func TestFireHoseBackpressure(t *testing.T) {
	srv := newMarket(t, market.Config{Shards: 1, QueueCap: 64})
	var out bytes.Buffer
	args := []string{"-url", srv.URL, "-events", "1000", "-batch", "50", "-workers", "4", "-run", "bp"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatalf("run: %v", err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Events != 1000 {
		t.Errorf("events = %d, want 1000 despite backpressure (rejected_429 = %d)", s.Events, s.Rejected429)
	}
}

func TestVerdictMode(t *testing.T) {
	srv := newMarket(t, market.Config{Threshold: 1})
	cl := &market.Client{BaseURL: srv.URL}
	if _, err := cl.Reports().Post(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-url", srv.URL, "-verdict", "app.v"}); err != nil {
		t.Fatalf("verdict mode: %v", err)
	}
	var v market.Verdict
	if err := json.Unmarshal(out.Bytes(), &v); err != nil {
		t.Fatalf("verdict does not parse: %v\n%s", err, out.String())
	}
	if v.App != "app.v" || v.Flagged {
		t.Errorf("verdict = %+v, want app.v, not repackaged", v)
	}
}

// TestCampaignMode runs the full paper loop end to end: prepare a
// protected+repackaged app, detonate it under the clean profile, and
// deliver the detections through the device pipeline into the store.
func TestCampaignMode(t *testing.T) {
	srv := newMarket(t, market.Config{Threshold: 1})
	var out bytes.Buffer
	args := []string{"-url", srv.URL, "-campaign", "AndroFish", "-sessions", "4", "-profile", "none", "-seed", "3"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatalf("campaign mode: %v", err)
	}
	got := out.String()
	// First block: the campaign summary JSON with the trace-derived
	// end-to-end percentiles and the market's time-to-verdict.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	var cs campaignSummary
	if err := json.Unmarshal([]byte(strings.Join(lines[:len(lines)-1], "\n")), &cs); err != nil {
		t.Fatalf("campaign summary does not parse: %v\n%s", err, got)
	}
	if cs.App != "AndroFish" || cs.Sessions != 4 {
		t.Errorf("summary = %+v, want AndroFish over 4 sessions", cs)
	}
	if cs.Delivered == 0 || cs.TracesClosed != cs.Delivered {
		t.Errorf("traces_closed = %d, want one closed trace per delivered report (%d)",
			cs.TracesClosed, cs.Delivered)
	}
	if cs.E2EP99Ms <= 0 || cs.E2EP50Ms > cs.E2EP99Ms {
		t.Errorf("e2e percentiles (%g, %g) not ordered positive", cs.E2EP50Ms, cs.E2EP99Ms)
	}
	if cs.TimeToVerdictMs < 0 {
		t.Errorf("time_to_verdict_ms = %d, want crossed at threshold 1", cs.TimeToVerdictMs)
	}
	// The last line is the market's verdict for the pirated package;
	// a detonating campaign over threshold 1 must flag it.
	var v market.Verdict
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &v); err != nil {
		t.Fatalf("verdict line does not parse: %v\n%s", err, got)
	}
	if !v.Flagged || v.Channels.Reports.Detections == 0 {
		t.Errorf("verdict = %+v, want repackaged with detections after campaign", v)
	}
}

// TestTimelineMode: -timeline prints the app's verdict timeline JSON.
func TestTimelineMode(t *testing.T) {
	srv := newMarket(t, market.Config{Threshold: 1})
	cl := &market.Client{BaseURL: srv.URL}
	if _, err := cl.Reports().Post(context.Background(), []report.Event{
		{App: "app.tlm", Bomb: "b1", User: "u1", TimeMs: 500, Info: "k"},
	}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-url", srv.URL, "-timeline", "app.tlm"}); err != nil {
		t.Fatalf("timeline mode: %v", err)
	}
	var tl market.Timeline
	if err := json.Unmarshal(out.Bytes(), &tl); err != nil {
		t.Fatalf("timeline does not parse: %v\n%s", err, out.String())
	}
	if tl.App != "app.tlm" || len(tl.Entries) != 1 || tl.Entries[0].Kind != "threshold" {
		t.Errorf("timeline = %+v, want one threshold entry", tl)
	}
}

// TestFireHoseDegradedRetry: 503s from a degraded shard slow the hose
// down (retry after the daemon's beat) instead of failing it, and the
// summary counts them.
func TestFireHoseDegradedRetry(t *testing.T) {
	srv := newMarket(t, market.Config{Shards: 1})
	// Front the market with a flake that answers 503 + Retry-After to
	// the first few POSTs, then hands off — the shape of a shard that
	// degraded and was restarted by an operator.
	var mu sync.Mutex
	remaining := 3
	flake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		deny := r.URL.Path == "/v1/reports" && remaining > 0
		if deny {
			remaining--
		}
		mu.Unlock()
		if deny {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"shard degraded"}`, http.StatusServiceUnavailable)
			return
		}
		httputil.NewSingleHostReverseProxy(mustParse(t, srv.URL)).ServeHTTP(w, r)
	}))
	defer flake.Close()

	oldDelay := degradedRetryDelay
	degradedRetryDelay = 10 * time.Millisecond
	defer func() { degradedRetryDelay = oldDelay }()

	var out bytes.Buffer
	args := []string{"-url", flake.URL, "-events", "500", "-batch", "100", "-workers", "2", "-run", "deg"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatalf("run: %v", err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary does not parse: %v\n%s", err, out.String())
	}
	if s.DegradedRetries != 3 {
		t.Errorf("degraded_retries = %d, want 3", s.DegradedRetries)
	}
	if s.Accepted != 500 || s.Duplicates != 0 {
		t.Errorf("summary = %+v, want all 500 accepted after retries", s)
	}
}

func mustParse(t *testing.T, raw string) *url.URL {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestFireHoseCluster: a comma-separated -url routes the hose through
// an in-process cluster router. Every event lands exactly once on its
// owning node, and -verdict/-timeline against the same node list
// serve the federated view.
func TestFireHoseCluster(t *testing.T) {
	mk := func(id string, lo, hi int) *httptest.Server {
		return newMarket(t, market.Config{
			Shards: 2, NodeID: id, Slots: 16,
			Range: market.ShardRange{Lo: lo, Hi: hi}, Threshold: 3,
		})
	}
	n0 := mk("n0", 0, 5)
	n1 := mk("n1", 5, 11)
	n2 := mk("n2", 11, 16)
	urls := n0.URL + "," + n1.URL + "," + n2.URL

	var out bytes.Buffer
	args := []string{"-url", urls, "-events", "2000", "-batch", "100", "-workers", "3", "-apps", "4", "-run", "cl1"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatalf("cluster hose: %v", err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary does not parse: %v\n%s", err, out.String())
	}
	if s.Events != 2000 || s.Accepted != 2000 || s.Duplicates != 0 {
		t.Errorf("summary = %+v, want 2000 accepted once across the cluster", s)
	}

	// The federated verdict sees the app's whole tally; no single node
	// does (4 apps over 2000 events → 500 each).
	out.Reset()
	if err := run(context.Background(), &out, []string{"-url", urls, "-verdict", "app-0"}); err != nil {
		t.Fatalf("federated verdict: %v", err)
	}
	var v market.Verdict
	if err := json.Unmarshal(out.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Channels.Reports.Detections != 500 || !v.Flagged {
		t.Errorf("federated verdict = %+v, want 500 detections", v)
	}
	nv, err := (&market.Client{BaseURL: n0.URL}).Verdicts().Get(context.Background(), "app-0")
	if err != nil {
		t.Fatal(err)
	}
	if nv.Channels.Reports.Detections == 0 || nv.Channels.Reports.Detections == 500 {
		t.Errorf("node share = %d detections, want a strict subset", nv.Channels.Reports.Detections)
	}

	// Campaign mode drives one HTTP endpoint; a node list is a usage
	// error, not a silent pick-the-first.
	out.Reset()
	if err := run(context.Background(), &out, []string{"-url", urls, "-campaign", "AndroFish"}); err == nil {
		t.Error("campaign with a node list should fail")
	}
}

// TestFireHoseCtxCancel: cancelling the context mid-hose stops the
// run promptly instead of sleeping through retry backoffs.
func TestFireHoseCtxCancel(t *testing.T) {
	// A server that backpressures forever: without cancellation the
	// hose would retry indefinitely.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, &out, []string{"-url", srv.URL, "-events", "1000", "-batch", "100", "-workers", "2", "-run", "cc"})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("err = %v, want context cancellation surfaced", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hose did not stop after cancellation")
	}
}
