// Command loadgen drives a running marketd.
//
// Three modes:
//
//	loadgen -url http://127.0.0.1:8844 -events 100000 [-batch 512]
//	        [-workers 4] [-gzip] [-apps 64] [-run label]
//
// fire-hose: synthesize -events detonation reports (mostly-unique
// keys across -apps apps), POST them through market.Client in
// -batch-sized batches from -workers goroutines, retrying 429
// backpressure and 503 degraded answers through the shared
// market.RetryPolicy, and print a JSON summary
// -url also accepts a comma-separated node list; loadgen then routes
// batches itself through an in-process cluster.Router (fire-hose,
// -verdict, and -timeline go federated; -campaign needs one URL —
// point it at a router daemon to exercise a cluster).
// with events_per_sec, p99_ms (per-POST), e2e_p50_ms/e2e_p99_ms
// (generation → durable ack, retries included), and degraded_retries.
//
//	loadgen -url ... -campaign AndroFish [-sessions 8] [-profile mild]
//
// campaign: prepare the named evaluation app, run a fault-injection
// detonation campaign (sim.RunChaos), and deliver its event stream
// through the device-side report.Pipeline with an HTTP sink pointed
// at marketd — the end-to-end paper loop: device detonations, flaky
// channel, retries and breaker, market WAL. Every report is traced
// from detonation to the daemon's post-WAL-flush ack; the JSON
// summary carries the trace-derived e2e_p50_ms/e2e_p99_ms (virtual
// ms) and the market's time_to_verdict_ms from the verdict timeline.
//
//	loadgen -url ... -verdict app-7
//	loadgen -url ... -timeline app-7
//
// verdict/timeline: fetch and print one app's fused verdict or
// verdict timeline.
//
//	loadgen -url ... -fingerprint out/manifest.json
//	loadgen -url ... -similar AndroFish
//
// fingerprint: walk a cmd/bombdroid -batch manifest, unpack each
// protected output package, and upload its resource fingerprint (the
// per-entry SHA-256 digests from the apk manifest) to
// POST /v1/apps/{app}/fingerprint — the static-channel corpus load.
// similar: fetch and print one app's top-K near-duplicate neighbors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"bombdroid/internal/apk"
	"bombdroid/internal/chaos"
	"bombdroid/internal/exp"
	"bombdroid/internal/market"
	"bombdroid/internal/market/cluster"
	"bombdroid/internal/obs"
	"bombdroid/internal/report"
	"bombdroid/internal/sim"
)

// summary is the fire-hose mode's JSON report.
type summary struct {
	Events          int     `json:"events"`
	Accepted        int     `json:"accepted"`
	Duplicates      int     `json:"duplicates"`
	Rejected429     int     `json:"rejected_429"`
	DegradedRetries int     `json:"degraded_retries"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	EventsPerSec    float64 `json:"events_per_sec"`
	P99Ms           float64 `json:"p99_ms"`
	// E2E percentiles cover a report's whole life on the wire:
	// generation → durable ack, retries and backpressure waits
	// included — what a device actually experiences, where p99_ms is
	// only the per-POST attempt latency.
	E2EP50Ms float64 `json:"e2e_p50_ms"`
	E2EP99Ms float64 `json:"e2e_p99_ms"`
}

// campaignSummary is the campaign mode's JSON report: pipeline
// delivery stats plus the trace-derived latency breakdown and the
// market's time-to-verdict, the end-to-end numbers behind the paper's
// detection-convergence claim.
type campaignSummary struct {
	App            string `json:"app"`
	Sessions       int    `json:"sessions"`
	Triggered      int    `json:"triggered"`
	Unique         int    `json:"unique"`
	Delivered      int64  `json:"delivered"`
	DeadLettered   int64  `json:"dead_lettered"`
	BreakerTripped bool   `json:"breaker_tripped"`
	TracesClosed   int64  `json:"traces_closed"`
	TracesAborted  int64  `json:"traces_aborted"`
	// Virtual-ms detonation→market-ack percentiles from the pipeline's
	// trace histogram.
	E2EP50Ms float64 `json:"e2e_p50_ms"`
	E2EP99Ms float64 `json:"e2e_p99_ms"`
	// TimeToVerdictMs is the market's event-time distance from first
	// report to threshold crossing (-1: verdict never flipped).
	TimeToVerdictMs int64 `json:"time_to_verdict_ms"`
}

// degradedRetryDelay matches the Retry-After the daemon sends with a
// 503 (a degraded shard is disk trouble, slower to clear than queue
// pressure). Variable so tests can shorten it.
var degradedRetryDelay = 2 * time.Second

func run(ctx context.Context, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "marketd base URL, e.g. http://127.0.0.1:8844 (required)")
	events := fs.Int("events", 100_000, "fire-hose: total events to send")
	batch := fs.Int("batch", 512, "fire-hose: events per POST")
	workers := fs.Int("workers", 4, "fire-hose: concurrent posting goroutines")
	gzipOn := fs.Bool("gzip", false, "fire-hose: gzip request bodies")
	apps := fs.Int("apps", 64, "fire-hose: distinct app ids to spread events over")
	runID := fs.String("run", "", "fire-hose: label mixed into user ids so reruns are novel (default: wall clock)")
	campaign := fs.String("campaign", "", "campaign: run a chaos detonation campaign for this evaluation app")
	sessions := fs.Int("sessions", 8, "campaign: detonation sessions")
	profile := fs.String("profile", "mild", "campaign: fault profile none|mild|harsh")
	seed := fs.Int64("seed", 42, "campaign: campaign seed")
	verdict := fs.String("verdict", "", "verdict: fetch this app's fused verdict and exit")
	timeline := fs.String("timeline", "", "timeline: fetch this app's verdict timeline and exit")
	fingerprint := fs.String("fingerprint", "", "fingerprint: upload resource fingerprints from this bombdroid -batch manifest and exit")
	similar := fs.String("similar", "", "similar: fetch this app's near-duplicate neighbors and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	// -url accepts a comma-separated node list: loadgen then routes
	// batches itself through an in-process cluster.Router instead of
	// needing a router daemon between it and the nodes.
	urls := splitURLs(*url)
	var tgt target
	if len(urls) == 1 {
		tgt = clientTarget{&market.Client{BaseURL: urls[0], Gzip: *gzipOn}}
	} else {
		rt, err := cluster.New(ctx, cluster.Config{Nodes: urls, Gzip: *gzipOn})
		if err != nil {
			return err
		}
		tgt = routerTarget{rt}
	}

	switch {
	case *verdict != "":
		v, err := tgt.Verdict(ctx, *verdict)
		if err != nil {
			return err
		}
		b, _ := json.Marshal(v)
		fmt.Fprintf(out, "%s\n", b)
		return nil
	case *timeline != "":
		tl, err := tgt.Timeline(ctx, *timeline)
		if err != nil {
			return err
		}
		b, _ := json.Marshal(tl)
		fmt.Fprintf(out, "%s\n", b)
		return nil
	case *fingerprint != "":
		return uploadFingerprints(ctx, out, tgt, *fingerprint)
	case *similar != "":
		sim, err := tgt.Similar(ctx, *similar)
		if err != nil {
			return err
		}
		b, _ := json.Marshal(sim)
		fmt.Fprintf(out, "%s\n", b)
		return nil
	case *campaign != "":
		if len(urls) > 1 {
			return fmt.Errorf("-campaign drives one HTTP endpoint; point -url at a single node or a router")
		}
		return runCampaign(ctx, out, urls[0], *campaign, *sessions, *profile, *seed)
	default:
		return fireHose(ctx, out, tgt, *events, *batch, *workers, *apps, *runID)
	}
}

// splitURLs parses the comma-separated -url value.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// target is what the generator modes drive: one node via
// market.Client, or a whole cluster via an in-process router. Both
// speak the same ctx-first surface.
type target interface {
	Post(ctx context.Context, evs []report.Event) (market.PostResult, error)
	Verdict(ctx context.Context, app string) (market.Verdict, error)
	Timeline(ctx context.Context, app string) (market.Timeline, error)
	PutFingerprint(ctx context.Context, fp market.Fingerprint) (market.FingerprintAck, error)
	Similar(ctx context.Context, app string) (market.Similar, error)
}

// clientTarget adapts market.Client's per-resource method groups to
// the flat target surface.
type clientTarget struct{ cl *market.Client }

func (t clientTarget) Post(ctx context.Context, evs []report.Event) (market.PostResult, error) {
	return t.cl.Reports().Post(ctx, evs)
}

func (t clientTarget) Verdict(ctx context.Context, app string) (market.Verdict, error) {
	return t.cl.Verdicts().Get(ctx, app)
}

func (t clientTarget) Timeline(ctx context.Context, app string) (market.Timeline, error) {
	return t.cl.Timelines().Get(ctx, app)
}

func (t clientTarget) PutFingerprint(ctx context.Context, fp market.Fingerprint) (market.FingerprintAck, error) {
	return t.cl.Fingerprints().Put(ctx, fp)
}

func (t clientTarget) Similar(ctx context.Context, app string) (market.Similar, error) {
	return t.cl.Fingerprints().Similar(ctx, app)
}

// routerTarget adapts cluster.Router's federated calls (and its Ack
// type) to the single-node shape.
type routerTarget struct{ rt *cluster.Router }

func (t routerTarget) Post(ctx context.Context, evs []report.Event) (market.PostResult, error) {
	ack, err := t.rt.PostCtx(ctx, evs)
	return market.PostResult{Accepted: ack.Accepted, Duplicates: ack.Duplicates}, err
}

func (t routerTarget) Verdict(ctx context.Context, app string) (market.Verdict, error) {
	return t.rt.VerdictCtx(ctx, app)
}

func (t routerTarget) Timeline(ctx context.Context, app string) (market.Timeline, error) {
	return t.rt.TimelineCtx(ctx, app)
}

func (t routerTarget) PutFingerprint(ctx context.Context, fp market.Fingerprint) (market.FingerprintAck, error) {
	return t.rt.PutFingerprintCtx(ctx, fp)
}

func (t routerTarget) Similar(ctx context.Context, app string) (market.Similar, error) {
	return t.rt.SimilarCtx(ctx, app)
}

// fpSummary is the fingerprint mode's JSON report. Apps is sorted so
// two uploads of the same corpus print identical summaries.
type fpSummary struct {
	Manifest string   `json:"manifest"`
	Uploaded int      `json:"uploaded"`
	Updated  int      `json:"updated"`
	Skipped  int      `json:"skipped"`
	Entries  int      `json:"entries"`
	Apps     []string `json:"apps"`
}

// batchApp mirrors the per-app rows of cmd/bombdroid's -batch
// manifest; only the fields fingerprint mode needs.
type batchApp struct {
	App    string `json:"app"`
	Status string `json:"status"`
	Out    string `json:"out"`
}

// uploadFingerprints walks a bombdroid -batch manifest, unpacks every
// successfully protected output APK, and uploads its per-entry digest
// set as the app's resource fingerprint.
func uploadFingerprints(ctx context.Context, out io.Writer, tgt target, manifestPath string) error {
	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	var man struct {
		Apps []batchApp `json:"apps"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("parse %s: %w", manifestPath, err)
	}
	s := fpSummary{Manifest: manifestPath}
	policy := market.RetryPolicy{Backoff503: degradedRetryDelay}
	for _, a := range man.Apps {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if a.Status != "ok" || a.Out == "" {
			s.Skipped++
			continue
		}
		data, err := os.ReadFile(a.Out)
		if err != nil {
			return fmt.Errorf("app %s: %w", a.App, err)
		}
		pkg, err := apk.Unpack(data)
		if err != nil {
			return fmt.Errorf("app %s: %w", a.App, err)
		}
		rows := pkg.Manifest.SortedDigests()
		digests := make([]string, len(rows))
		for i, r := range rows {
			digests[i] = r.Digest
		}
		fp := market.Fingerprint{App: pkg.Name, Digests: digests}
		var ack market.FingerprintAck
		if _, err := policy.Do(ctx, func(ctx context.Context) error {
			var perr error
			ack, perr = tgt.PutFingerprint(ctx, fp)
			return perr
		}); err != nil {
			return fmt.Errorf("app %s: %w", pkg.Name, err)
		}
		s.Uploaded++
		s.Entries += ack.Entries
		if ack.Updated {
			s.Updated++
		}
		s.Apps = append(s.Apps, pkg.Name)
	}
	sort.Strings(s.Apps)
	b, _ := json.MarshalIndent(s, "", "  ")
	fmt.Fprintf(out, "%s\n", b)
	return nil
}

// fireHose hammers POST /v1/reports from workers goroutines and
// reports throughput. 429s and 503s are retried through the shared
// market.RetryPolicy (unbounded attempts, doubling backoff with
// jitter) — backpressure slows the hose, it never drops from it — and
// the posts are ctx-first, so Ctrl-C cancels an in-flight POST or a
// backoff pause instead of sleeping through it.
func fireHose(ctx context.Context, out io.Writer, cl target, events, batch, workers, apps int, runID string) error {
	if runID == "" {
		runID = fmt.Sprintf("%d", time.Now().UnixNano())
	}
	policy := market.RetryPolicy{Backoff503: degradedRetryDelay}
	type res struct {
		accepted, dups, rejects, degraded int
		lat                               []time.Duration // per-POST attempt latency
		e2e                               []time.Duration // per-batch generation → durable ack
		err                               error
	}
	batches := make(chan int)
	failed := make(chan struct{}) // closed on the first hard worker error
	var failOnce sync.Once
	results := make([]res, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			evs := make([]report.Event, batch)
			for off := range batches {
				gen := time.Now()
				for j := range evs {
					i := off + j
					evs[j] = report.Event{
						App:    fmt.Sprintf("app-%d", i%apps),
						Bomb:   fmt.Sprintf("bomb-%d", i%997),
						User:   fmt.Sprintf("u-%s-%d", runID, i),
						TimeMs: int64(i),
						Info:   "loadgen",
					}
				}
				var pr market.PostResult
				stats, err := policy.Do(ctx, func(ctx context.Context) error {
					t0 := time.Now()
					var perr error
					pr, perr = cl.Post(ctx, evs)
					r.lat = append(r.lat, time.Since(t0))
					return perr
				})
				r.rejects += stats.Retries429
				r.degraded += stats.Retries503
				if err != nil {
					r.err = err
					if !errors.Is(err, context.Canceled) {
						// Hard error (daemon gone, 413, …): stop the feed
						// too, or the producer would block forever on a
						// channel no worker drains.
						failOnce.Do(func() { close(failed) })
					}
					return
				}
				r.accepted += pr.Accepted
				r.dups += pr.Duplicates
				r.e2e = append(r.e2e, time.Since(gen))
			}
		}(w)
	}
feed:
	for off := 0; off < events; off += batch {
		select {
		case batches <- off:
		case <-failed:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(batches)
	wg.Wait()
	elapsed := time.Since(start)

	var s summary
	var lat, e2e []time.Duration
	for _, r := range results {
		if r.err != nil && !errors.Is(r.err, context.Canceled) {
			return r.err
		}
		s.Accepted += r.accepted
		s.Duplicates += r.dups
		s.Rejected429 += r.rejects
		s.DegradedRetries += r.degraded
		lat = append(lat, r.lat...)
		e2e = append(e2e, r.e2e...)
	}
	s.Events = s.Accepted + s.Duplicates
	s.ElapsedSec = elapsed.Seconds()
	s.EventsPerSec = float64(s.Events) / elapsed.Seconds()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.P99Ms = float64(lat[len(lat)*99/100].Microseconds()) / 1000.0
	}
	if len(e2e) > 0 {
		sort.Slice(e2e, func(i, j int) bool { return e2e[i] < e2e[j] })
		s.E2EP50Ms = float64(e2e[len(e2e)/2].Microseconds()) / 1000.0
		s.E2EP99Ms = float64(e2e[len(e2e)*99/100].Microseconds()) / 1000.0
	}
	b, _ := json.MarshalIndent(s, "", "  ")
	fmt.Fprintf(out, "%s\n", b)
	return ctx.Err()
}

// runCampaign replays a real detonation campaign into marketd: the
// prepared (protected, repackaged) app detonates under fault
// injection, and every detection flows through the device-side
// pipeline — retries, backoff, breaker — into the daemon's WAL.
func runCampaign(ctx context.Context, out io.Writer, url, app string, sessions int, profile string, seed int64) error {
	var prof chaos.Profile
	switch profile {
	case "none":
		prof = chaos.None
	case "mild":
		prof = chaos.Mild
	case "harsh":
		prof = chaos.Harsh
	default:
		return fmt.Errorf("unknown profile %q (want none, mild or harsh)", profile)
	}
	p, err := exp.PrepareCtx(ctx, app, 2_500)
	if err != nil {
		return err
	}
	// The tracer rides the device-side pipeline: every detonation event
	// minted at Submit, per-attempt annotations through retries and
	// breaker holds, closed at the market's post-WAL-flush ack (the
	// HTTP sink carries the trace id out and the server's timing header
	// back). SampleN 1 = every report traced; a load test wants the
	// full distribution, head sampling is for always-on fleets.
	treg := obs.NewRegistry()
	tracer := obs.NewTracer(treg, obs.TracerConfig{Seed: seed, SampleN: 1})
	res, err := sim.RunChaos(ctx, p.Pirated, p.Surface, sim.ChaosOptions{
		Sessions: sessions,
		CapMs:    20 * 60_000,
		Seed:     seed,
		Profile:  prof,
		Sink:     &report.HTTPSink{URL: url + "/v1/reports"},
		Pipeline: []report.Option{
			report.WithMaxAttempts(200),
			report.WithMaxBackoffMs(5 * 60_000),
			report.WithBreakerThreshold(3),
			report.WithTracer(tracer),
		},
	})
	if err != nil {
		return err
	}
	cl := &market.Client{BaseURL: url}
	tl, err := cl.Timelines().Get(ctx, p.Pirated.Name)
	if err != nil {
		return err
	}
	e2e := tracer.E2E().Snapshot()
	cs := campaignSummary{
		App:             p.Pirated.Name,
		Sessions:        sessions,
		Triggered:       res.Successes,
		Unique:          res.UniqueDetects,
		Delivered:       res.Pipeline.Delivered,
		DeadLettered:    res.Pipeline.DeadLettered,
		BreakerTripped:  res.BreakerTripped,
		TracesClosed:    treg.Counter("traces_closed_total").Value(),
		TracesAborted:   treg.Counter("traces_aborted_total").Value(),
		E2EP50Ms:        e2e.Quantile(0.5),
		E2EP99Ms:        e2e.Quantile(0.99),
		TimeToVerdictMs: tl.TimeToVerdictMs,
	}
	b, _ := json.MarshalIndent(cs, "", "  ")
	fmt.Fprintf(out, "%s\n", b)
	v, err := cl.Verdicts().Get(ctx, p.Pirated.Name)
	if err != nil {
		return err
	}
	b, _ = json.Marshal(v)
	fmt.Fprintf(out, "%s\n", b)
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
