// End-to-end integration of the whole pipeline: the single test that
// tells the paper's story — build, protect, verify transparency,
// pirate, detect, resist.
package bombdroid_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"bombdroid/internal/android"
	"bombdroid/internal/apk"
	"bombdroid/internal/appgen"
	"bombdroid/internal/attack"
	"bombdroid/internal/core"
	"bombdroid/internal/dex"
	"bombdroid/internal/sim"
	"bombdroid/internal/symexec"
	"bombdroid/internal/vm"
)

func TestEndToEnd(t *testing.T) {
	// 1. Developer builds and signs an app.
	app, err := appgen.Generate(appgen.Config{
		Name: "e2e", Seed: 1234, TargetLOC: 2200, QCPerMethod: 1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	devKey, err := apk.NewKeyPair(77)
	if err != nil {
		t.Fatal(err)
	}
	original, err := apk.Sign(apk.Build("e2e", app.File, apk.Resources{
		Strings: []string{"Play"}, Author: "dev", Icon: []byte{1, 2, 3},
	}), devKey)
	if err != nil {
		t.Fatal(err)
	}

	// 2. BombDroid protects it (full Fig. 1 pipeline, all detection
	// methods, §10 muting off so every detonation is visible).
	protected, res, err := core.ProtectPackage(original, devKey, core.Options{
		Seed: 99,
		Detections: []core.DetectionMethod{
			core.DetectPublicKey, core.DetectDigest, core.DetectSnippet, core.DetectIcon,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Bombs() < 10 {
		t.Fatalf("too few bombs: %d", res.Stats.Bombs())
	}

	// 3. Transparency: the protected app behaves exactly like the
	// original for genuine users.
	rng := rand.New(rand.NewSource(5))
	dev := android.SamplePopulation("u", rng)
	vO, err := vm.New(original, dev.Clone(), vm.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	vP, err := vm.New(protected, dev.Clone(), vm.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		h := app.Handlers[rng.Intn(len(app.Handlers))]
		a, b := dex.Int64(rng.Int63n(64)), dex.Int64(rng.Int63n(64))
		if _, err := vO.Invoke(h, a, b); err != nil {
			t.Fatal(err)
		}
		if _, err := vP.Invoke(h, a, b); err != nil {
			t.Fatalf("protected app diverged: %v", err)
		}
	}
	for _, ref := range app.IntFieldRefs {
		if !vO.Static(ref).Equal(vP.Static(ref)) {
			t.Fatalf("%s: state diverged", ref)
		}
	}
	if len(vP.Responses()) != 0 {
		t.Fatal("false positive on the genuine app")
	}

	// 4. A pirate repackages; user devices detect it.
	pirateKey, err := apk.NewKeyPair(666)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := apk.Repackage(protected, pirateKey, apk.RepackOptions{
		NewAuthor: "pirate", NewIcon: []byte{9},
	})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := sim.Run(context.Background(), pirated, sim.SurfaceOf(app), sim.CampaignOptions{N: 10, CapMs: 30 * 60_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Successes == 0 {
		t.Fatal("no user detected the pirated copy")
	}

	// 5. The attacker's static arsenal comes up empty.
	file, err := protected.DexFile()
	if err != nil {
		t.Fatal(err)
	}
	if n := attack.FindToken(attack.TextSearch(file), "getPublicKey"); n != 0 {
		t.Errorf("text search found %d getPublicKey tokens", n)
	}
	sum := symexec.Analyze(file, symexec.Options{Targets: []dex.API{dex.APIDecryptLoad}})
	if len(sum.SolvedHits()) != 0 {
		t.Error("symbolic execution recovered a bomb key")
	}
	if len(sum.UnsolvableHits()) == 0 {
		t.Error("no decrypt paths even explored")
	}
	// Disassembly shows plumbing, never payload internals.
	dis := dex.Disassemble(file)
	for _, secret := range []string{"getPublicKey", "getManifestDigest", "stegoExtract", "codeDigest"} {
		if strings.Contains(dis, secret) {
			t.Errorf("payload internals leaked: %s", secret)
		}
	}
}
